//! Cost of the executable theory: greedy decomposition, terminal
//! prediction, potential computation, and stability checking.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use circles_core::potential::weight_vector;
use circles_core::prediction::{is_exchange_stable, predicted_brakets};
use circles_core::{Color, GreedyDecomposition};
use pp_analysis::workloads::geometric_workload;

fn bench_greedy(c: &mut Criterion) {
    let mut group = c.benchmark_group("greedy_decomposition");
    group.sample_size(20);
    for (n, k) in [(1_000usize, 16u16), (100_000, 64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let inputs: Vec<Color> = geometric_workload(n, k, 1.3);
                b.iter(|| GreedyDecomposition::from_inputs(black_box(&inputs), k).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_prediction(c: &mut Criterion) {
    let mut group = c.benchmark_group("predicted_brakets");
    group.sample_size(20);
    for (n, k) in [(1_000usize, 16u16), (100_000, 64)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let inputs: Vec<Color> = geometric_workload(n, k, 1.3);
                b.iter(|| predicted_brakets(black_box(&inputs), k).unwrap())
            },
        );
    }
    group.finish();
}

fn bench_potential_and_stability(c: &mut Criterion) {
    let mut group = c.benchmark_group("theory_checks");
    group.sample_size(20);
    let (n, k) = (100_000usize, 32u16);
    let inputs: Vec<Color> = geometric_workload(n, k, 1.3);
    let config = predicted_brakets(&inputs, k).unwrap();
    group.bench_function("weight_vector_100k", |b| {
        b.iter(|| weight_vector(black_box(&config), k))
    });
    group.bench_function("is_exchange_stable_100k", |b| {
        b.iter(|| is_exchange_stable(black_box(&config), k))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_greedy,
    bench_prediction,
    bench_potential_and_stability
);
criterion_main!(benches);
