//! Micro-benchmarks of the Circles transition function and its pieces.
//!
//! The transition is the innermost loop of every engine; the paper's
//! protocol performs two weight computations, a min comparison and an
//! optional swap — this bench pins its cost across `k`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use circles_core::{weight, would_exchange, BraKet, CirclesProtocol, Color};
use pp_protocol::Protocol;

fn bench_weight(c: &mut Criterion) {
    let mut group = c.benchmark_group("weight");
    group.sample_size(20);
    for k in [4u16, 64, 1024] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let arcs: Vec<BraKet> = (0..k)
                .map(|i| BraKet::new(Color(i), Color((i * 7 + 3) % k)))
                .collect();
            b.iter(|| {
                let mut acc = 0u64;
                for arc in &arcs {
                    acc += u64::from(weight(k, black_box(*arc)));
                }
                acc
            })
        });
    }
    group.finish();
}

fn bench_would_exchange(c: &mut Criterion) {
    let mut group = c.benchmark_group("would_exchange");
    group.sample_size(20);
    for k in [4u16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let arcs: Vec<(BraKet, BraKet)> = (0..k)
                .map(|i| {
                    (
                        BraKet::new(Color(i), Color((i + 1) % k)),
                        BraKet::new(Color((i * 3) % k), Color((i * 5 + 2) % k)),
                    )
                })
                .collect();
            b.iter(|| {
                let mut fired = 0usize;
                for (x, y) in &arcs {
                    if would_exchange(k, black_box(*x), black_box(*y)).is_some() {
                        fired += 1;
                    }
                }
                fired
            })
        });
    }
    group.finish();
}

fn bench_full_transition(c: &mut Criterion) {
    let mut group = c.benchmark_group("circles_transition");
    group.sample_size(20);
    for k in [4u16, 16, 64] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let protocol = CirclesProtocol::new(k).unwrap();
            let states: Vec<_> = (0..k).map(|i| protocol.input(&Color(i))).collect();
            b.iter(|| {
                let mut acc = 0u32;
                for a in &states {
                    for bq in &states {
                        let (x, y) = protocol.transition(black_box(a), black_box(bq));
                        acc ^= u32::from(x.out.0) ^ u32::from(y.braket.ket.0);
                    }
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_weight,
    bench_would_exchange,
    bench_full_transition
);
criterion_main!(benches);
