//! Discovery-path benchmarks at `k = 30` (slot tables past `10^4`): the
//! symmetric-protocol discovery fast path and the compact adjacency
//! representation.
//!
//! Three one-shot parts, all asserted in-process so regressions fail the
//! CI bench-smoke job instead of drifting:
//!
//! 1. `discovery/sym_*` vs `discovery/asym_*` — full slot-table discovery
//!    with the protocol's transition calls counted, once through the
//!    symmetric fast path (Circles declares `is_symmetric`) and once with
//!    symmetry masked off. The call ratio is **asserted ≥ 1.8×** (the
//!    structural expectation is 2×: one call per unordered pair instead of
//!    one per ordered pair).
//! 2. `discovery/*_bytes_per_pair` — the same discovered adjacency held by
//!    the PR-3 flat sparse index (`VecAdj`, 8 bytes/pair) and by the
//!    compact index (shared symmetric rows, delta-varint or blocked-bitset
//!    per row). Compact is **asserted ≤ 0.25×** the flat bytes/active-pair.
//! 3. Warm engines on the sparse, compact and dense indexes, bulk-loaded
//!    from one [`TransitionTable`] (same slot order, same seed), run to
//!    silence — their `RunReport`s are **asserted bit-identical**, pinning
//!    representation-independence of the sampling path at scale.

use std::cell::Cell;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::{
    CompactActivity, CountConfig, CountEngine, DenseActivity, Protocol, SparseActivity,
    UniformCountScheduler,
};

/// Forwards to an inner protocol while counting transition calls;
/// optionally masks `is_symmetric` to force all-ordered-pairs discovery.
struct CallCounter<'a, P> {
    inner: &'a P,
    calls: Cell<u64>,
    force_asymmetric: bool,
}

impl<P: Protocol> Protocol for CallCounter<'_, P> {
    type State = P::State;
    type Input = P::Input;
    type Output = P::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input(&self, input: &Self::Input) -> Self::State {
        self.inner.input(input)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.inner.output(state)
    }

    fn transition(&self, a: &Self::State, b: &Self::State) -> (Self::State, Self::State) {
        self.calls.set(self.calls.get() + 1);
        self.inner.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        !self.force_asymmetric && self.inner.is_symmetric()
    }
}

const K: u16 = 30;
const N: usize = 12_000;

/// Primes a fresh engine with `states` (pure discovery, no run) and returns
/// (elapsed ns, protocol transition calls).
fn timed_discovery(
    protocol: &CirclesProtocol,
    states: &[CirclesState],
    force_asymmetric: bool,
) -> (f64, u64) {
    let counter = CallCounter {
        inner: protocol,
        calls: Cell::new(0),
        force_asymmetric,
    };
    let mut engine = CountEngine::from_config(&counter, CountConfig::new(), 7);
    let start = Instant::now();
    engine.prime_states(states.iter().copied());
    (start.elapsed().as_nanos() as f64, counter.calls.get())
}

fn bench_discovery(c: &mut Criterion) {
    let protocol = CirclesProtocol::new(K).unwrap();
    let inputs = margin_workload(N, K, N / 10);
    let config: CountConfig<CirclesState> = inputs.iter().map(|i| protocol.input(i)).collect();

    // Scout run: the slot table this workload actually visits, exported to
    // a transition table for the warm-engine comparison below.
    let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
    let scout_report = scout.run_until_silent(u64::MAX / 2).unwrap();
    assert_eq!(scout_report.consensus, Some(true_winner(&inputs, K)));
    let states: Vec<CirclesState> = scout.known_states().to_vec();
    let slots = states.len();
    assert!(
        slots >= 10_000,
        "discovery workload must exercise >= 10^4 slots, got {slots}"
    );
    let table = scout.warm_table();

    // Part 1: symmetric vs forced-asymmetric discovery call counts. One
    // discarded warmup first: the initial ~300 MB adjacency allocation
    // pays first-touch page faults that would skew whichever variant runs
    // first.
    let _ = timed_discovery(&protocol, &states, false);
    let (sym_ns, sym_calls) = timed_discovery(&protocol, &states, false);
    let (asym_ns, asym_calls) = timed_discovery(&protocol, &states, true);
    let call_ratio = asym_calls as f64 / sym_calls as f64;
    criterion::report_external("discovery/slots", slots as f64, 1);
    criterion::report_external("discovery/sym_ns", sym_ns, 1);
    criterion::report_external("discovery/asym_ns", asym_ns, 1);
    criterion::report_external("discovery/sym_calls", sym_calls as f64, 1);
    criterion::report_external("discovery/asym_calls", asym_calls as f64, 1);
    criterion::report_external("discovery/call_ratio_x", call_ratio, 1);
    println!(
        "discovery: k={K} slots={slots}; symmetric {sym_calls} calls ({:.2}s) vs \
         asymmetric {asym_calls} calls ({:.2}s) => {call_ratio:.2}x fewer",
        sym_ns / 1e9,
        asym_ns / 1e9,
    );
    assert!(
        call_ratio >= 1.8,
        "symmetric discovery must make >= 1.8x fewer transition calls at \
         k = 30, got {call_ratio:.2}x"
    );

    // Parts 2 + 3: warm engines per activity index. Slot numbering is
    // canonical (trajectory order), so each warm run must be bit-identical
    // to the others — and to the scout's *cold* run of the same seed — with
    // the adjacency footprint measured on each.
    fn run_warm<A: pp_protocol::Activity>(
        protocol: &CirclesProtocol,
        config: &CountConfig<CirclesState>,
        table: &pp_protocol::TransitionTable<CirclesProtocol>,
    ) -> (pp_protocol::RunReport<circles_core::Color>, usize, usize) {
        let mut e = CountEngine::<_, _, A>::with_table_parts(
            protocol,
            config.clone(),
            UniformCountScheduler::new(),
            7,
            table,
        );
        let r = e.run_until_silent(u64::MAX / 2).unwrap();
        (r, e.adjacency_bytes(), e.active_pairs())
    }
    let (sparse_report, sparse_bytes, sparse_pairs) =
        run_warm::<SparseActivity>(&protocol, &config, &table);
    let (compact_report, compact_bytes, compact_pairs) =
        run_warm::<CompactActivity>(&protocol, &config, &table);
    let (dense_report, _, dense_pairs) = run_warm::<DenseActivity>(&protocol, &config, &table);
    assert_eq!(
        sparse_report, scout_report,
        "a warm run must be bit-identical to the cold run of its seed"
    );
    assert_eq!(
        sparse_report, compact_report,
        "sparse and compact warm engines must execute identical trajectories"
    );
    assert_eq!(
        sparse_report, dense_report,
        "sparse and dense warm engines must execute identical trajectories"
    );
    assert_eq!(sparse_pairs, compact_pairs);
    assert_eq!(sparse_pairs, dense_pairs);

    let sparse_bpp = sparse_bytes as f64 / sparse_pairs as f64;
    let compact_bpp = compact_bytes as f64 / compact_pairs as f64;
    let bytes_ratio = compact_bpp / sparse_bpp;
    criterion::report_external("discovery/active_pairs", sparse_pairs as f64, 1);
    criterion::report_external("discovery/sparse_bytes_per_pair", sparse_bpp, 1);
    criterion::report_external("discovery/compact_bytes_per_pair", compact_bpp, 1);
    criterion::report_external("discovery/compact_over_sparse_bytes_x", bytes_ratio, 1);
    println!(
        "discovery: {sparse_pairs} active pairs; flat {sparse_bpp:.2} B/pair vs \
         compact {compact_bpp:.2} B/pair ({bytes_ratio:.3}x)"
    );
    assert!(
        bytes_ratio <= 0.25,
        "compact adjacency must be <= 0.25x the flat bytes/active-pair at \
         slots >= 10^4, got {bytes_ratio:.3}x"
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
