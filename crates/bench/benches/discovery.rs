//! Discovery-path benchmarks at `k = 30` (slot tables past `10^4`): the
//! symmetric-protocol discovery fast path and the compact adjacency
//! representation.
//!
//! Three one-shot parts, all asserted in-process so regressions fail the
//! CI bench-smoke job instead of drifting:
//!
//! 1. `discovery/sym_*` vs `discovery/asym_*` — full slot-table discovery
//!    with the protocol's transition calls counted, once through the
//!    symmetric fast path (Circles declares `is_symmetric`) and once with
//!    symmetry masked off. The call ratio is **asserted ≥ 1.8×** (the
//!    structural expectation is 2×: one call per unordered pair instead of
//!    one per ordered pair).
//! 2. `discovery/*_bytes_per_pair` — the same discovered adjacency held by
//!    the PR-3 flat sparse index (`VecAdj`, 8 bytes/pair) and by the
//!    compact index (shared symmetric rows, delta-varint or blocked-bitset
//!    per row). Compact is **asserted ≤ 0.25×** the flat bytes/active-pair.
//! 3. Warm engines on the sparse, compact and dense indexes, bulk-loaded
//!    from one [`TransitionTable`] (same slot order, same seed), run to
//!    silence — their `RunReport`s are **asserted bit-identical**, pinning
//!    representation-independence of the sampling path at scale.
//! 4. `discovery/quotient_*` — full `k³` enumeration (27 000 states,
//!    rotation-closed unlike the scout set) discovered once through the
//!    symmetric last-query memo and once through the color-orbit quotient
//!    (one protocol call per canonical pair, the orbit reconstructed
//!    mechanically). The quotient call ratio is **asserted ≥ 20×**
//!    (structurally `k = 30×`: rotation folding `k×`, on top of the same
//!    swap folding the memo already gets), the two tables are asserted
//!    row-for-row identical, and a fixed-seed warm run over each must
//!    produce bit-identical `RunReport`s.

use std::cell::Cell;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::{
    CompactActivity, CountConfig, CountEngine, DenseActivity, EnumerableProtocol, Protocol,
    SparseActivity, UniformCountScheduler,
};

/// Forwards to an inner protocol while counting transition calls;
/// optionally masks `is_symmetric` (forcing all-ordered-pairs discovery)
/// and, separately, the color quotient — masked by default, so every
/// measurement opts into quotient discovery explicitly.
struct CallCounter<'a, P> {
    inner: &'a P,
    calls: Cell<u64>,
    force_asymmetric: bool,
    expose_quotient: bool,
}

impl<P: Protocol> Protocol for CallCounter<'_, P> {
    type State = P::State;
    type Input = P::Input;
    type Output = P::Output;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input(&self, input: &Self::Input) -> Self::State {
        self.inner.input(input)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.inner.output(state)
    }

    fn transition(&self, a: &Self::State, b: &Self::State) -> (Self::State, Self::State) {
        self.calls.set(self.calls.get() + 1);
        self.inner.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        !self.force_asymmetric && self.inner.is_symmetric()
    }

    fn color_quotient(&self) -> Option<&dyn pp_protocol::StateQuotient<Self::State>> {
        if self.expose_quotient {
            self.inner.color_quotient()
        } else {
            None
        }
    }
}

impl<P: EnumerableProtocol> EnumerableProtocol for CallCounter<'_, P> {
    fn states(&self) -> Vec<Self::State> {
        self.inner.states()
    }
}

const K: u16 = 30;
const N: usize = 12_000;

/// Primes a fresh engine with `states` (pure discovery, no run) and returns
/// (elapsed ns, protocol transition calls).
fn timed_discovery(
    protocol: &CirclesProtocol,
    states: &[CirclesState],
    force_asymmetric: bool,
) -> (f64, u64) {
    let counter = CallCounter {
        inner: protocol,
        calls: Cell::new(0),
        force_asymmetric,
        expose_quotient: false,
    };
    let mut engine = CountEngine::from_config(&counter, CountConfig::new(), 7);
    let start = Instant::now();
    engine.prime_states(states.iter().copied());
    (start.elapsed().as_nanos() as f64, counter.calls.get())
}

fn bench_discovery(c: &mut Criterion) {
    let protocol = CirclesProtocol::new(K).unwrap();
    let inputs = margin_workload(N, K, N / 10);
    let config: CountConfig<CirclesState> = inputs.iter().map(|i| protocol.input(i)).collect();

    // Scout run: the slot table this workload actually visits, exported to
    // a transition table for the warm-engine comparison below.
    let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
    let scout_report = scout.run_until_silent(u64::MAX / 2).unwrap();
    assert_eq!(scout_report.consensus, Some(true_winner(&inputs, K)));
    let states: Vec<CirclesState> = scout.known_states().to_vec();
    let slots = states.len();
    assert!(
        slots >= 10_000,
        "discovery workload must exercise >= 10^4 slots, got {slots}"
    );
    let table = scout.warm_table();

    // Part 1: symmetric vs forced-asymmetric discovery call counts. One
    // discarded warmup first: the initial ~300 MB adjacency allocation
    // pays first-touch page faults that would skew whichever variant runs
    // first.
    let _ = timed_discovery(&protocol, &states, false);
    let (sym_ns, sym_calls) = timed_discovery(&protocol, &states, false);
    let (asym_ns, asym_calls) = timed_discovery(&protocol, &states, true);
    let call_ratio = asym_calls as f64 / sym_calls as f64;
    criterion::report_external("discovery/slots", slots as f64, 1);
    criterion::report_external("discovery/sym_ns", sym_ns, 1);
    criterion::report_external("discovery/asym_ns", asym_ns, 1);
    criterion::report_external("discovery/sym_calls", sym_calls as f64, 1);
    criterion::report_external("discovery/asym_calls", asym_calls as f64, 1);
    criterion::report_external("discovery/call_ratio_x", call_ratio, 1);
    println!(
        "discovery: k={K} slots={slots}; symmetric {sym_calls} calls ({:.2}s) vs \
         asymmetric {asym_calls} calls ({:.2}s) => {call_ratio:.2}x fewer",
        sym_ns / 1e9,
        asym_ns / 1e9,
    );
    assert!(
        call_ratio >= 1.8,
        "symmetric discovery must make >= 1.8x fewer transition calls at \
         k = 30, got {call_ratio:.2}x"
    );

    // Parts 2 + 3: warm engines per activity index. Slot numbering is
    // canonical (trajectory order), so each warm run must be bit-identical
    // to the others — and to the scout's *cold* run of the same seed — with
    // the adjacency footprint measured on each.
    fn run_warm<A: pp_protocol::Activity>(
        protocol: &CirclesProtocol,
        config: &CountConfig<CirclesState>,
        table: &pp_protocol::TransitionTable<CirclesProtocol>,
    ) -> (pp_protocol::RunReport<circles_core::Color>, usize, usize) {
        let mut e = CountEngine::<_, _, A>::with_table_parts(
            protocol,
            config.clone(),
            UniformCountScheduler::new(),
            7,
            table,
        );
        let r = e.run_until_silent(u64::MAX / 2).unwrap();
        (r, e.adjacency_bytes(), e.active_pairs())
    }
    let (sparse_report, sparse_bytes, sparse_pairs) =
        run_warm::<SparseActivity>(&protocol, &config, &table);
    let (compact_report, compact_bytes, compact_pairs) =
        run_warm::<CompactActivity>(&protocol, &config, &table);
    let (dense_report, _, dense_pairs) = run_warm::<DenseActivity>(&protocol, &config, &table);
    assert_eq!(
        sparse_report, scout_report,
        "a warm run must be bit-identical to the cold run of its seed"
    );
    assert_eq!(
        sparse_report, compact_report,
        "sparse and compact warm engines must execute identical trajectories"
    );
    assert_eq!(
        sparse_report, dense_report,
        "sparse and dense warm engines must execute identical trajectories"
    );
    assert_eq!(sparse_pairs, compact_pairs);
    assert_eq!(sparse_pairs, dense_pairs);

    let sparse_bpp = sparse_bytes as f64 / sparse_pairs as f64;
    let compact_bpp = compact_bytes as f64 / compact_pairs as f64;
    let bytes_ratio = compact_bpp / sparse_bpp;
    criterion::report_external("discovery/active_pairs", sparse_pairs as f64, 1);
    criterion::report_external("discovery/sparse_bytes_per_pair", sparse_bpp, 1);
    criterion::report_external("discovery/compact_bytes_per_pair", compact_bpp, 1);
    criterion::report_external("discovery/compact_over_sparse_bytes_x", bytes_ratio, 1);
    println!(
        "discovery: {sparse_pairs} active pairs; flat {sparse_bpp:.2} B/pair vs \
         compact {compact_bpp:.2} B/pair ({bytes_ratio:.3}x)"
    );
    assert!(
        bytes_ratio <= 0.25,
        "compact adjacency must be <= 0.25x the flat bytes/active-pair at \
         slots >= 10^4, got {bytes_ratio:.3}x"
    );

    // Part 4: color-orbit quotient discovery over the full k³ enumeration.
    // The scout-visited set above is not rotation-closed, so the quotient
    // comparison runs on the enumeration (27 000 states at k = 30), where
    // every orbit is complete and the compact index keeps the footprint in
    // bitsets instead of a multi-GB flat table.
    let full_states = protocol.states();
    let full_slots = full_states.len();
    let quotient = protocol
        .color_quotient()
        .expect("circles must expose its rotation quotient");
    let mut canon = std::collections::HashSet::new();
    for s in &full_states {
        canon.insert(quotient.canonical_state(s).0);
    }
    let orbit_factor = full_slots as f64 / canon.len() as f64;

    fn timed_full_discovery<'a>(
        counter: &'a CallCounter<'a, CirclesProtocol>,
        states: &[CirclesState],
    ) -> (
        f64,
        u64,
        pp_protocol::TransitionTable<CallCounter<'a, CirclesProtocol>>,
    ) {
        let mut engine = CountEngine::<_, _, CompactActivity>::with_parts(
            counter,
            CountConfig::new(),
            UniformCountScheduler::new(),
            7,
        );
        let start = Instant::now();
        engine.prime_states(states.iter().copied());
        let elapsed = start.elapsed().as_nanos() as f64;
        (elapsed, counter.calls.get(), engine.warm_table())
    }

    let memo_counter = CallCounter {
        inner: &protocol,
        calls: Cell::new(0),
        force_asymmetric: false,
        expose_quotient: false,
    };
    let (memo_ns, memo_calls, memo_table) = timed_full_discovery(&memo_counter, &full_states);
    let quot_counter = CallCounter {
        inner: &protocol,
        calls: Cell::new(0),
        force_asymmetric: false,
        expose_quotient: true,
    };
    let quot_start = Instant::now();
    let quot_table =
        pp_protocol::quotient_table(&quot_counter).expect("circles exposes a quotient");
    let quot_ns = quot_start.elapsed().as_nanos() as f64;
    let quot_calls = quot_counter.calls.get();
    let quotient_ratio = memo_calls as f64 / quot_calls as f64;
    criterion::report_external("discovery/full_slots", full_slots as f64, 1);
    criterion::report_external("discovery/full_sym_calls", memo_calls as f64, 1);
    criterion::report_external("discovery/quotient_calls", quot_calls as f64, 1);
    criterion::report_external("discovery/quotient_call_ratio_x", quotient_ratio, 1);
    criterion::report_external("discovery/orbit_factor", orbit_factor, 1);
    println!(
        "discovery: full k={K} enumeration {full_slots} slots; symmetric memo \
         {memo_calls} calls ({:.2}s) vs quotient {quot_calls} calls ({:.2}s) => \
         {quotient_ratio:.2}x fewer; orbit factor {orbit_factor:.2}",
        memo_ns / 1e9,
        quot_ns / 1e9,
    );
    assert!(
        quotient_ratio >= 20.0,
        "quotient discovery must make >= 20x fewer transition calls than the \
         symmetric memo at k = 30, got {quotient_ratio:.2}x"
    );

    // The two tables must agree row for row: the quotient changes who
    // answers a classification, never the answer (or the slot order).
    let memo_snap = memo_table.snapshot();
    let quot_snap = quot_table.snapshot();
    assert_eq!(memo_snap.len(), quot_snap.len());
    for i in 0..memo_snap.len() {
        assert_eq!(memo_snap.state(i as u32), quot_snap.state(i as u32));
        let mut memo_row = Vec::new();
        memo_snap.walk_out(i as u32, |j| {
            memo_row.push(j);
            true
        });
        let mut quot_row = Vec::new();
        quot_snap.walk_out(i as u32, |j| {
            quot_row.push(j);
            true
        });
        assert_eq!(
            memo_row, quot_row,
            "row {i}: memo- and quotient-discovered tables must be identical"
        );
    }

    // And a fixed-seed warm run over each table — outcomes resolve through
    // the quotient on one side and the raw protocol on the other — must
    // execute the same trajectory.
    fn run_full_warm<'a>(
        counter: &'a CallCounter<'a, CirclesProtocol>,
        config: &CountConfig<CirclesState>,
        table: &pp_protocol::TransitionTable<CallCounter<'a, CirclesProtocol>>,
    ) -> pp_protocol::RunReport<circles_core::Color> {
        let mut e = CountEngine::<_, _, CompactActivity>::with_table_parts(
            counter,
            config.clone(),
            UniformCountScheduler::new(),
            7,
            table,
        );
        e.run_until_silent(u64::MAX / 2).unwrap()
    }
    let memo_run = run_full_warm(&memo_counter, &config, &memo_table);
    let quot_run = run_full_warm(&quot_counter, &config, &quot_table);
    assert_eq!(
        memo_run, quot_run,
        "fixed-seed warm runs over memo- and quotient-discovered full tables \
         must be bit-identical"
    );

    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_discovery);
criterion_main!(benches);
