//! Backend comparison: the indexed engine vs the batched count engine on
//! the paper protocol, same workloads, end-to-end to silence.
//!
//! Three parts:
//!
//! 1. `backend_to_silence` — both backends run identical margin workloads to
//!    silence at sizes where the indexed engine can finish.
//! 2. `count_to_silence_large` — the count engine alone at `n = 10^5` and
//!    `10^6` (full mode), where a full indexed run would take hours: these
//!    runs cover `10^9`–`10^12` interactions in well under a second.
//! 3. `speedup_check` — a one-shot large-`n` comparison: the count engine
//!    runs to silence; the indexed engine is timed over a fixed interaction
//!    prefix of the same workload, and its full-run time is the measured
//!    per-interaction cost times the interaction count the count run
//!    established. The implied speedup is recorded in the JSON report and
//!    **asserted to be ≥ 50×**, so a count-engine regression fails the CI
//!    bench-smoke job instead of drifting silently.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use circles_core::{CirclesProtocol, Color};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::{CountEngine, Population, Simulation, UniformPairScheduler};

const K: u16 = 3;

fn workload(n: usize) -> Vec<Color> {
    margin_workload(n, K, n / 10)
}

fn run_indexed_to_silence(inputs: &[Color], seed: u64) -> u64 {
    let protocol = CirclesProtocol::new(K).unwrap();
    let population = Population::from_inputs(&protocol, inputs);
    let n = population.len() as u64;
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
    sim.run_until_silent(u64::MAX / 2, n)
        .unwrap()
        .steps_to_silence
}

fn run_count_to_silence(inputs: &[Color], seed: u64) -> u64 {
    let protocol = CirclesProtocol::new(K).unwrap();
    let mut engine = CountEngine::from_inputs(&protocol, inputs, seed);
    engine
        .run_until_silent(u64::MAX / 2)
        .unwrap()
        .steps_to_silence
}

/// Head-to-head at sizes the indexed engine can still finish.
fn bench_backends_to_silence(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_to_silence");
    group.sample_size(10);
    let ns: &[usize] = if criterion::quick_mode() {
        &[2_000]
    } else {
        &[2_000, 10_000]
    };
    for &n in ns {
        let inputs = workload(n);
        group.bench_with_input(
            BenchmarkId::new("indexed", format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_indexed_to_silence(inputs, 7)),
        );
        group.bench_with_input(
            BenchmarkId::new("count", format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_count_to_silence(inputs, 7)),
        );
    }
    group.finish();
}

/// The count engine where only it can go: `n` up to a million, to silence.
fn bench_count_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_to_silence_large");
    group.sample_size(10);
    let ns: &[usize] = if criterion::quick_mode() {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in ns {
        let inputs = workload(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_count_to_silence(inputs, 7)),
        );
    }
    group.finish();
}

/// One-shot `n = 10^6` comparison enforcing the ≥ 50× speedup claim.
///
/// The indexed engine cannot run `~10^11` interactions in a bench, so its
/// full-run time is bounded *from below* by measuring a fixed prefix and
/// extrapolating linearly at the measured per-interaction cost (the indexed
/// per-step cost does not depend on how far the run has progressed).
fn bench_speedup_check(c: &mut Criterion) {
    let n = 1_000_000usize;
    let inputs = workload(n);
    let protocol = CirclesProtocol::new(K).unwrap();
    let expected = true_winner(&inputs, K);

    // Count engine: full run to silence.
    let count_start = Instant::now();
    let mut engine = CountEngine::from_inputs(&protocol, &inputs, 7);
    let report = engine.run_until_silent(u64::MAX / 2).unwrap();
    let count_ns = count_start.elapsed().as_nanos() as f64;
    assert_eq!(
        report.consensus,
        Some(expected),
        "count run must be correct"
    );
    let total_steps = report.steps;

    // Indexed engine: fixed-prefix per-interaction cost on the same inputs.
    const PREFIX: u64 = 10_000_000;
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 7);
    let indexed_start = Instant::now();
    for _ in 0..PREFIX {
        let _ = sim.step().unwrap();
    }
    let per_step_ns = indexed_start.elapsed().as_nanos() as f64 / PREFIX as f64;

    let implied_indexed_ns = per_step_ns * total_steps as f64;
    let speedup = implied_indexed_ns / count_ns;
    criterion::report_external("speedup_check/count_full_ns", count_ns, 1);
    criterion::report_external("speedup_check/indexed_per_step_ns", per_step_ns, 1);
    criterion::report_external(
        "speedup_check/implied_indexed_full_ns",
        implied_indexed_ns,
        1,
    );
    criterion::report_external("speedup_check/implied_speedup_x", speedup, 1);
    println!(
        "speedup_check: n={n}, {total_steps} interactions; count {:.3}s vs indexed \
         ~{:.0}s implied ⇒ {speedup:.0}x",
        count_ns / 1e9,
        implied_indexed_ns / 1e9,
    );
    assert!(
        speedup >= 50.0,
        "count engine regressed below the 50x bar: implied speedup {speedup:.1}x"
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(
    benches,
    bench_backends_to_silence,
    bench_count_large,
    bench_speedup_check
);
criterion_main!(benches);
