//! Backend comparison: the indexed engine vs the batched count engine on
//! the paper protocol, same workloads, end-to-end to silence.
//!
//! Five parts:
//!
//! 1. `backend_to_silence` — both backends run identical margin workloads to
//!    silence at sizes where the indexed engine can finish.
//! 2. `count_to_silence_large` — the count engine alone at `n = 10^5` and
//!    `10^6` (full mode), where a full indexed run would take hours: these
//!    runs cover `10^9`–`10^12` interactions in well under a second.
//! 3. `speedup_check` — a one-shot large-`n` comparison: the count engine
//!    runs to silence; the indexed engine is timed over a fixed interaction
//!    prefix of the same workload, and its full-run time is the measured
//!    per-interaction cost times the interaction count the count run
//!    established. The implied speedup is recorded in the JSON report and
//!    **asserted to be ≥ 50×**, so a count-engine regression fails the CI
//!    bench-smoke job instead of drifting silently.
//! 4. `slot_scaling` — the sparse vs dense *activity index* comparison at
//!    `k = 30` (slot tables ≥ 10^4): both engines are primed with the same
//!    discovered state set so the one-time `O(slots²)` transition discovery
//!    stays out of the measurement, then run to silence. Asserts the sparse
//!    index is **≥ 5× faster per change-point** at large `k` and **no
//!    slower** on the small-`k` workload (both recorded in the JSON
//!    report).
//! 5. `large_n` — a one-shot Circles run at `n = 10^9` (count-level margin
//!    workload, no input vector materialized) that must complete to
//!    silence with the correct winner — the population scale the former
//!    `u32::MAX` cap made unreachable. Skippable locally via
//!    `PP_BENCH_SKIP_LARGE_N=1`; CI always runs it.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_analysis::workloads::{margin_counts, margin_workload, true_winner};
use pp_protocol::{
    CountConfig, CountEngine, DenseCountEngine, Population, Simulation, UniformCountScheduler,
    UniformPairScheduler,
};

const K: u16 = 3;

fn workload(n: usize) -> Vec<Color> {
    margin_workload(n, K, n / 10)
}

fn run_indexed_to_silence(inputs: &[Color], seed: u64) -> u64 {
    let protocol = CirclesProtocol::new(K).unwrap();
    let population = Population::from_inputs(&protocol, inputs);
    let n = population.len() as u64;
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
    sim.run_until_silent(u64::MAX / 2, n)
        .unwrap()
        .steps_to_silence
}

fn run_count_to_silence(inputs: &[Color], seed: u64) -> u64 {
    let protocol = CirclesProtocol::new(K).unwrap();
    let mut engine = CountEngine::from_inputs(&protocol, inputs, seed);
    engine
        .run_until_silent(u64::MAX / 2)
        .unwrap()
        .steps_to_silence
}

/// Head-to-head at sizes the indexed engine can still finish.
fn bench_backends_to_silence(c: &mut Criterion) {
    let mut group = c.benchmark_group("backend_to_silence");
    group.sample_size(10);
    let ns: &[usize] = if criterion::quick_mode() {
        &[2_000]
    } else {
        &[2_000, 10_000]
    };
    for &n in ns {
        let inputs = workload(n);
        group.bench_with_input(
            BenchmarkId::new("indexed", format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_indexed_to_silence(inputs, 7)),
        );
        group.bench_with_input(
            BenchmarkId::new("count", format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_count_to_silence(inputs, 7)),
        );
    }
    group.finish();
}

/// The count engine where only it can go: `n` up to a million, to silence.
fn bench_count_large(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_to_silence_large");
    group.sample_size(10);
    let ns: &[usize] = if criterion::quick_mode() {
        &[100_000]
    } else {
        &[100_000, 1_000_000]
    };
    for &n in ns {
        let inputs = workload(n);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}")),
            &inputs,
            |b, inputs| b.iter(|| run_count_to_silence(inputs, 7)),
        );
    }
    group.finish();
}

/// One-shot `n = 10^6` comparison enforcing the ≥ 50× speedup claim.
///
/// The indexed engine cannot run `~10^11` interactions in a bench, so its
/// full-run time is bounded *from below* by measuring a fixed prefix and
/// extrapolating linearly at the measured per-interaction cost (the indexed
/// per-step cost does not depend on how far the run has progressed).
fn bench_speedup_check(c: &mut Criterion) {
    let n = 1_000_000usize;
    let inputs = workload(n);
    let protocol = CirclesProtocol::new(K).unwrap();
    let expected = true_winner(&inputs, K);

    // Count engine: full run to silence.
    let count_start = Instant::now();
    let mut engine = CountEngine::from_inputs(&protocol, &inputs, 7);
    let report = engine.run_until_silent(u64::MAX / 2).unwrap();
    let count_ns = count_start.elapsed().as_nanos() as f64;
    assert_eq!(
        report.consensus,
        Some(expected),
        "count run must be correct"
    );
    let total_steps = report.steps;

    // Indexed engine: fixed-prefix per-interaction cost on the same inputs.
    const PREFIX: u64 = 10_000_000;
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 7);
    let indexed_start = Instant::now();
    for _ in 0..PREFIX {
        let _ = sim.step().unwrap();
    }
    let per_step_ns = indexed_start.elapsed().as_nanos() as f64 / PREFIX as f64;

    let implied_indexed_ns = per_step_ns * total_steps as f64;
    let speedup = implied_indexed_ns / count_ns;
    criterion::report_external("speedup_check/count_full_ns", count_ns, 1);
    criterion::report_external("speedup_check/indexed_per_step_ns", per_step_ns, 1);
    criterion::report_external(
        "speedup_check/implied_indexed_full_ns",
        implied_indexed_ns,
        1,
    );
    criterion::report_external("speedup_check/implied_speedup_x", speedup, 1);
    println!(
        "speedup_check: n={n}, {total_steps} interactions; count {:.3}s vs indexed \
         ~{:.0}s implied ⇒ {speedup:.0}x",
        count_ns / 1e9,
        implied_indexed_ns / 1e9,
    );
    assert!(
        speedup >= 50.0,
        "count engine regressed below the 50x bar: implied speedup {speedup:.1}x"
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

/// Sparse vs dense activity index at `k = 30`: per-change-point cost on a
/// slot table past 10^4, with discovery primed out of the measurement.
fn bench_slot_scaling(c: &mut Criterion) {
    let k = 30u16;
    let n = 12_000usize;
    let protocol = CirclesProtocol::new(k).unwrap();
    let inputs = margin_workload(n, k, n / 10);
    let config: CountConfig<CirclesState> = inputs
        .iter()
        .map(|i| pp_protocol::Protocol::input(&protocol, i))
        .collect();

    // Scout run: discover the slot table this workload actually visits.
    let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
    let report = scout.run_until_silent(u64::MAX / 2).unwrap();
    let states: Vec<CirclesState> = scout.known_states().to_vec();
    let slots = states.len();
    assert!(
        slots >= 10_000,
        "slot-scaling workload must exercise >= 10^4 slots, got {slots}"
    );
    assert_eq!(report.consensus, Some(true_winner(&inputs, k)));

    // Both engines primed with the identical state set (same slot order →
    // same RNG stream → identical trajectories), so run time is pure
    // steady-state per-change-point cost.
    let run_sparse = || {
        let mut engine = CountEngine::from_config(&protocol, config.clone(), 7);
        engine.prime_states(states.iter().cloned());
        let start = Instant::now();
        let report = engine.run_until_silent(u64::MAX / 2).unwrap();
        (start.elapsed().as_nanos() as f64, report)
    };
    let run_dense = || {
        let mut engine = DenseCountEngine::with_parts(
            &protocol,
            config.clone(),
            UniformCountScheduler::new(),
            7,
        );
        engine.prime_states(states.iter().cloned());
        let start = Instant::now();
        let report = engine.run_until_silent(u64::MAX / 2).unwrap();
        (start.elapsed().as_nanos() as f64, report)
    };
    let (sparse_ns, sparse_report) = run_sparse();
    let (dense_ns, dense_report) = run_dense();
    assert_eq!(
        sparse_report, dense_report,
        "primed engines must execute identical trajectories"
    );
    let changes = sparse_report.state_changes as f64;
    let sparse_per_cp = sparse_ns / changes;
    let dense_per_cp = dense_ns / changes;
    let ratio = dense_per_cp / sparse_per_cp;
    criterion::report_external("slot_scaling/slots", slots as f64, 1);
    criterion::report_external("slot_scaling/sparse_per_change_ns", sparse_per_cp, 1);
    criterion::report_external("slot_scaling/dense_per_change_ns", dense_per_cp, 1);
    criterion::report_external("slot_scaling/dense_over_sparse_x", ratio, 1);
    println!(
        "slot_scaling: k={k} n={n} slots={slots}, {changes:.0} change-points; \
         sparse {sparse_per_cp:.0}ns vs dense {dense_per_cp:.0}ns per change-point \
         ({ratio:.1}x)"
    );
    assert!(
        ratio >= 5.0,
        "sparse activity index must be >= 5x faster per change-point at \
         slots >= 10^4, got {ratio:.2}x"
    );

    // Small-k guard: the sparse index must not regress the common case.
    // Medians over repeated runs to absorb scheduler noise.
    let small_inputs = workload(300_000);
    let small_config: CountConfig<CirclesState> = small_inputs
        .iter()
        .map(|i| pp_protocol::Protocol::input(&protocol_small(), i))
        .collect();
    let median = |runs: &mut [f64]| {
        runs.sort_by(|a, b| a.partial_cmp(b).expect("finite times"));
        runs[runs.len() / 2]
    };
    let mut sparse_times: Vec<f64> = (0..3)
        .map(|_| {
            let p = protocol_small();
            let mut engine = CountEngine::from_config(&p, small_config.clone(), 7);
            let start = Instant::now();
            engine.run_until_silent(u64::MAX / 2).unwrap();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    let mut dense_times: Vec<f64> = (0..3)
        .map(|_| {
            let p = protocol_small();
            let mut engine = DenseCountEngine::with_parts(
                &p,
                small_config.clone(),
                UniformCountScheduler::new(),
                7,
            );
            let start = Instant::now();
            engine.run_until_silent(u64::MAX / 2).unwrap();
            start.elapsed().as_nanos() as f64
        })
        .collect();
    let sparse_small = median(&mut sparse_times);
    let dense_small = median(&mut dense_times);
    let small_ratio = sparse_small / dense_small;
    criterion::report_external("slot_scaling/small_k_sparse_over_dense_x", small_ratio, 3);
    println!(
        "slot_scaling small-k guard: k={K} n=300000 sparse/dense = {small_ratio:.3} \
         (sparse {:.0}ms vs dense {:.0}ms)",
        sparse_small / 1e6,
        dense_small / 1e6
    );
    assert!(
        small_ratio <= 1.15,
        "sparse index regressed the small-k path: {small_ratio:.3}x dense \
         (tolerance 1.15 for timer noise)"
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

/// Constructs the small-`k` protocol (a function so each run re-borrows
/// cleanly inside closures).
fn protocol_small() -> CirclesProtocol {
    CirclesProtocol::new(K).unwrap()
}

/// One-shot `n = 10^9` Circles run to silence — the population scale the
/// former `u32::MAX` cap made impossible. The workload is built at count
/// level (`margin_counts`), so no `n`-sized input vector ever exists.
fn bench_large_n(c: &mut Criterion) {
    if std::env::var("PP_BENCH_SKIP_LARGE_N").is_ok() {
        println!("large_n: skipped via PP_BENCH_SKIP_LARGE_N");
        return;
    }
    let n: u64 = 1_000_000_000;
    let protocol = CirclesProtocol::new(K).unwrap();
    let mut config = CountConfig::new();
    for (color, count) in margin_counts(n, K, n / 10) {
        config.insert(
            pp_protocol::Protocol::input(&protocol, &color),
            count as usize,
        );
    }
    let start = Instant::now();
    let mut engine = CountEngine::from_config(&protocol, config, 7);
    let report = engine.run_until_silent(u64::MAX / 2).unwrap();
    let elapsed_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(
        report.consensus,
        Some(Color(0)),
        "n = 10^9 run must elect the margin winner"
    );
    assert!(engine.is_silent());
    let per_change = elapsed_ns / report.state_changes as f64;
    criterion::report_external("large_n/count_full_ns", elapsed_ns, 1);
    criterion::report_external("large_n/interactions", report.steps as f64, 1);
    criterion::report_external("large_n/state_changes", report.state_changes as f64, 1);
    criterion::report_external("large_n/per_change_ns", per_change, 1);
    println!(
        "large_n: n=10^9 silenced after {} interactions ({} state changes) \
         in {:.1}s ({per_change:.0}ns per change-point)",
        report.steps,
        report.state_changes,
        elapsed_ns / 1e9
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(
    benches,
    bench_backends_to_silence,
    bench_count_large,
    bench_speedup_check,
    bench_slot_scaling,
    bench_large_n
);
criterion_main!(benches);
