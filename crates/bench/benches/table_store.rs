//! The persistent-store claim at `k = 30`: a saved transition table loads
//! into a warm engine with **zero protocol transition calls**, bit-identical
//! results, and a load bill that is a small fraction of cold discovery.
//!
//! The store under test is either the CI artifact named by the
//! `PP_TABLE_STORE` environment variable (built once per pipeline by the
//! `table_store` CLI) or, absent that, a store this bench builds itself in
//! a temp directory — same bytes either way, since the format is canonical.
//!
//! Reported rows (see `results/README.md`):
//! `table_store/slots`, `table_store/cold_discovery_ns` (one `O(slots²)`
//! in-process discovery of the store's state set),
//! `table_store/save_ns`, `table_store/file_bytes`,
//! `table_store/load_ns` (disk → verified `TransitionTable`, zero protocol
//! calls), `table_store/warm_prime_ns` (loaded table → fully materialized
//! warm engine), `table_store/warm_prime_calls` (**asserted `== 0`**: the
//! acceptance criterion that persistence replaces every discovery call),
//! `table_store/cold_over_load_x` (cold discovery over load, **asserted
//! `>= 10`**: reading the store must cost a small fraction of
//! rediscovering its contents), and `table_store/cold_over_warm_x` (cold
//! discovery over load + prime, informational: priming is engine
//! materialization that any warm start pays, disk-backed or not, so it is
//! benched but not gated here — `warm_sweep` owns that surface).
//!
//! The bench also runs one seed cold and one seed warm-from-disk and
//! asserts the two `RunReport`s are bit-identical — the store can only
//! save time, never change a trajectory.

use std::cell::Cell;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState};
use pp_analysis::workloads::margin_workload;
use pp_protocol::transition_store;
use pp_protocol::{
    CompactCountEngine, CountConfig, CountEngine, Protocol, TransitionTable, UniformCountScheduler,
};

const K: u16 = 30;
const N: usize = 3_000;

/// Forwards to an inner protocol while counting transition calls.
struct CallCounter<'a> {
    inner: &'a CirclesProtocol,
    calls: Cell<u64>,
}

impl Protocol for CallCounter<'_> {
    type State = CirclesState;
    type Input = circles_core::Color;
    type Output = circles_core::Color;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input(&self, input: &Self::Input) -> Self::State {
        self.inner.input(input)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.inner.output(state)
    }

    fn transition(&self, a: &Self::State, b: &Self::State) -> (Self::State, Self::State) {
        self.calls.set(self.calls.get() + 1);
        self.inner.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }

    fn fingerprint_param(&self) -> u64 {
        self.inner.fingerprint_param()
    }
}

fn bench_table_store(c: &mut Criterion) {
    let protocol = CirclesProtocol::new(K).unwrap();
    let inputs = margin_workload(N, K, N / 10);
    let config: CountConfig<CirclesState> = inputs.iter().map(|i| protocol.input(i)).collect();

    // The store under test: the CI artifact, or one built here.
    let own_store =
        std::env::temp_dir().join(format!("pp-table-store-bench-{}.ppts", std::process::id()));
    let (store_path, save_ns) = match std::env::var("PP_TABLE_STORE") {
        Ok(path) if std::path::Path::new(&path).exists() => {
            println!("table_store: using CI store artifact {path}");
            (std::path::PathBuf::from(path), None)
        }
        _ => {
            let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
            scout.run_until_silent(u64::MAX / 2).unwrap();
            let table = scout.warm_table();
            let start = Instant::now();
            let meta = transition_store::save(&table, &protocol, &own_store).unwrap();
            let save_ns = start.elapsed().as_nanos() as f64;
            println!(
                "table_store: built {} ({} states, {} bytes) in {:.1}ms",
                own_store.display(),
                meta.states,
                meta.file_bytes,
                save_ns / 1e6
            );
            (own_store.clone(), Some(save_ns))
        }
    };

    // Load: disk -> verified table, asserted zero protocol calls (the
    // loader never receives the protocol's transition function, but the
    // counter documents the contract end-to-end anyway).
    let counter = CallCounter {
        inner: &protocol,
        calls: Cell::new(0),
    };
    let start = Instant::now();
    let loaded: TransitionTable<CallCounter<'_>> =
        transition_store::load(&counter, &store_path).unwrap();
    let load_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(counter.calls.get(), 0, "loading must make zero calls");
    let slots = loaded.len();
    let file_bytes = std::fs::metadata(&store_path).unwrap().len();
    assert!(
        slots >= 5_000,
        "a k = 30 store must carry thousands of slots"
    );

    // Warm prime: materialize every stored state in a warm engine. This is
    // the acceptance criterion: zero protocol transition calls.
    let states = loaded.dump().states;
    let counted_config: CountConfig<CirclesState> =
        inputs.iter().map(|i| counter.input(i)).collect();
    counter.calls.set(0);
    let start = Instant::now();
    let mut warm = CompactCountEngine::with_table_parts(
        &counter,
        counted_config,
        UniformCountScheduler::new(),
        7,
        &loaded,
    );
    warm.prime_states(states.iter().copied());
    let warm_prime_ns = start.elapsed().as_nanos() as f64;
    let warm_prime_calls = counter.calls.get();
    assert_eq!(warm.slots(), slots, "priming covers the whole store");
    assert_eq!(
        warm_prime_calls, 0,
        "a stored table must warm-start with zero protocol transition calls"
    );

    // One cold discovery of the same state set, for the ratio. Median of
    // two samples.
    let cold_sample = || {
        let counter = CallCounter {
            inner: &protocol,
            calls: Cell::new(0),
        };
        let counted_config: CountConfig<CirclesState> =
            inputs.iter().map(|i| counter.input(i)).collect();
        let mut engine = CountEngine::from_config(&counter, counted_config, 7);
        let start = Instant::now();
        engine.prime_states(states.iter().copied());
        (start.elapsed().as_nanos() as f64, counter.calls.get())
    };
    let (a, b) = (cold_sample(), cold_sample());
    let (cold_discovery_ns, cold_calls) = if a.0 < b.0 { a } else { b };
    assert!(cold_calls > 0, "cold discovery pays protocol calls");

    let cold_over_load = cold_discovery_ns / load_ns;
    let cold_over_warm = cold_discovery_ns / (load_ns + warm_prime_ns);
    criterion::report_external("table_store/slots", slots as f64, 1);
    criterion::report_external("table_store/cold_discovery_ns", cold_discovery_ns, 2);
    if let Some(save_ns) = save_ns {
        criterion::report_external("table_store/save_ns", save_ns, 1);
    }
    criterion::report_external("table_store/file_bytes", file_bytes as f64, 1);
    criterion::report_external("table_store/load_ns", load_ns, 1);
    criterion::report_external("table_store/warm_prime_ns", warm_prime_ns, 1);
    criterion::report_external("table_store/warm_prime_calls", warm_prime_calls as f64, 1);
    criterion::report_external("table_store/cold_over_load_x", cold_over_load, 1);
    criterion::report_external("table_store/cold_over_warm_x", cold_over_warm, 1);
    println!(
        "table_store: k={K} slots={slots} file={file_bytes}B; load {:.1}ms \
         (+ prime {:.1}ms) vs cold discovery {:.2}s ({cold_calls} calls) \
         => load {cold_over_load:.0}x, end-to-end {cold_over_warm:.0}x",
        load_ns / 1e6,
        warm_prime_ns / 1e6,
        cold_discovery_ns / 1e9,
    );
    assert!(
        cold_over_load >= 10.0,
        "loading a store must cost a small fraction of cold discovery, \
         got {cold_over_load:.1}x"
    );

    // Trajectory equivalence: one cold seed vs the same seed warm-started
    // from the on-disk store — bit-identical reports.
    let mut cold = CountEngine::from_config(&protocol, config.clone(), 11);
    cold.run_until_silent(u64::MAX / 2).unwrap();
    let disk_table: TransitionTable<CirclesProtocol> =
        transition_store::load(&protocol, &store_path).unwrap();
    let mut warm = CompactCountEngine::with_table_parts(
        &protocol,
        config,
        UniformCountScheduler::new(),
        11,
        &disk_table,
    );
    warm.run_until_silent(u64::MAX / 2).unwrap();
    assert_eq!(
        warm.report(),
        cold.report(),
        "a warm run from the on-disk store must replay the cold run exactly"
    );

    let _ = std::fs::remove_file(&own_store);
    let _ = c;
}

criterion_group!(benches, bench_table_store);
criterion_main!(benches);
