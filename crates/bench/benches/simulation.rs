//! Engine throughput: interactions per second for the indexed and the
//! count-based simulators.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use circles_core::{CirclesProtocol, Color};
use pp_analysis::workloads::{photo_finish_workload, shuffled};
use pp_protocol::{CountEngine, Population, Simulation, UniformPairScheduler};

fn bench_indexed_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexed_sim_steps");
    group.sample_size(10);
    const STEPS: u64 = 50_000;
    group.throughput(Throughput::Elements(STEPS));
    for (n, k) in [(256usize, 8u16), (1024, 8), (1024, 32)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let protocol = CirclesProtocol::new(k).unwrap();
                let inputs: Vec<Color> = shuffled(photo_finish_workload(n, k), 1);
                b.iter(|| {
                    let population = Population::from_inputs(&protocol, &inputs);
                    let mut sim =
                        Simulation::new(&protocol, population, UniformPairScheduler::new(), 42);
                    for _ in 0..STEPS {
                        let _ = sim.step().unwrap();
                    }
                    sim.stats().state_changes
                })
            },
        );
    }
    group.finish();
}

fn bench_counting_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_engine_steps");
    group.sample_size(10);
    const STEPS: u64 = 50_000;
    group.throughput(Throughput::Elements(STEPS));
    for (n, k) in [(1024usize, 8u16), (65_536, 8), (1_048_576, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let protocol = CirclesProtocol::new(k).unwrap();
                let inputs: Vec<Color> = photo_finish_workload(n, k);
                b.iter(|| {
                    let mut engine = CountEngine::from_inputs(&protocol, &inputs, 42);
                    for _ in 0..STEPS {
                        let _ = engine.step().unwrap();
                    }
                    engine.steps()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_indexed_steps, bench_counting_steps);
criterion_main!(benches);
