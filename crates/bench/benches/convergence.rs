//! End-to-end convergence latency on small, fixed instances — the
//! wall-clock cost of one complete Circles run per engine and per baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use circles_core::{CirclesProtocol, Color};
use pp_analysis::workloads::{photo_finish_workload, shuffled};
use pp_baselines::UndecidedDynamics;
use pp_protocol::{CountEngine, Population, Simulation, UniformPairScheduler};

fn bench_circles_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("circles_to_silence");
    group.sample_size(10);
    let cases: &[(usize, u16)] = if criterion::quick_mode() {
        &[(64, 2), (64, 8)]
    } else {
        &[(64, 2), (64, 8), (256, 8)]
    };
    for &(n, k) in cases {
        let inputs: Vec<Color> = shuffled(photo_finish_workload(n, k), 3);
        let protocol = CirclesProtocol::new(k).unwrap();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &inputs,
            |b, inputs| {
                b.iter(|| {
                    let population = Population::from_inputs(&protocol, inputs);
                    let mut sim =
                        Simulation::new(&protocol, population, UniformPairScheduler::new(), 7);
                    let report = sim.run_until_silent(500_000_000, n as u64).unwrap();
                    report.steps_to_silence
                })
            },
        );
    }
    group.finish();
}

fn bench_counting_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("count_engine_to_silence");
    group.sample_size(10);
    let (n, k) = if criterion::quick_mode() {
        (1024usize, 8u16)
    } else {
        (65_536, 8)
    };
    let inputs: Vec<Color> = photo_finish_workload(n, k);
    let protocol = CirclesProtocol::new(k).unwrap();
    group.bench_function(format!("circles_n{n}_k{k}"), |b| {
        b.iter(|| {
            let mut engine = CountEngine::from_inputs(&protocol, &inputs, 7);
            let report = engine.run_until_silent(u64::MAX / 2).unwrap();
            report.steps_to_silence
        })
    });
    let usd = UndecidedDynamics::new(k);
    group.bench_function(format!("usd_n{n}_k{k}"), |b| {
        b.iter(|| {
            let mut engine = CountEngine::from_inputs(&usd, &inputs, 7);
            let report = engine.run_until_silent(u64::MAX / 2).unwrap();
            report.steps_to_silence
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_circles_convergence,
    bench_counting_convergence
);
criterion_main!(benches);
