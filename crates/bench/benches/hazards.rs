//! Hazard-layer benches: the fault-free overhead contract and the
//! full-scale `n = 10^9`, `k = 30` hazard row.
//!
//! Two parts:
//!
//! 1. `fault_free_overhead` — the hazard driver with an **empty plan** must
//!    be free: it wraps the engine's own `run_until_silent`, draws nothing
//!    from the hazard stream, and produces a `RunReport` byte-identical to
//!    the plain engine run of the same seed (asserted here, and
//!    property-tested across activity indexes in
//!    `pp_extensions/tests/properties.rs`). The wall-clock ratio is
//!    reported as `hazards/fault_free_overhead_x` (a ratio row, exempt from
//!    the 2× trend gate) and asserted ≈ 1× (≤ 1.5 to ride out CI noise).
//! 2. `hazard_large_n` — a crash/corrupt/churn schedule against `n = 10^9`
//!    agents at `k = 30`, run to silence and graded. The workload is
//!    near-unanimous (the winner holds all but one agent per loser color),
//!    which keeps state changes `O(k²)` instead of `Θ(n)` — the regime
//!    where a 10^9-agent hazard run is CI-affordable (sub-millisecond of
//!    engine work) while still exercising slot discovery, the activity
//!    index and mass perturbation at full population scale. When
//!    `PP_TABLE_CACHE` holds the k = 30 store (CI's `store-cache`
//!    artifact), the run warm-loads the table through the compact engine;
//!    otherwise it discovers cold — the graded outcome is identical either
//!    way. Asserts the run stabilizes on the correct winner with churn
//!    balanced out (`final_n == n`).
//!
//! Reported rows: `hazards/fault_free_overhead_x`, `hazards/large_n_ns`,
//! `hazards/large_n_recovery_changes` (deterministic, so its trend ratio is
//! exactly 1 unless the engine or schedule semantics change).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_analysis::table_cache::TableCache;
use pp_analysis::workloads::margin_counts;
use pp_extensions::hazards::{
    run_circles_hazards, run_with_hazards, Hazard, HazardKind, HazardPlan, HazardReport,
};
use pp_protocol::{
    CompactCountEngine, CountConfig, CountEngine, SparseActivity, UniformCountScheduler,
};
use rand::rngs::Philox4x32;

fn config_from(counts: &[(Color, u64)]) -> CountConfig<CirclesState> {
    let mut config = CountConfig::new();
    for &(color, count) in counts {
        config.insert(
            CirclesState::initial(color),
            count.try_into().expect("count fits a usize"),
        );
    }
    config
}

/// Part 1: empty-plan runs must cost what plain runs cost and report the
/// same bytes.
fn bench_fault_free_overhead(c: &mut Criterion) {
    let k = 3u16;
    let n: u64 = if criterion::quick_mode() {
        100_000
    } else {
        1_000_000
    };
    let counts = margin_counts(n, k, n / 10);
    let protocol = CirclesProtocol::new(k).unwrap();
    let reps = 5;
    let mut plain_ns = Vec::with_capacity(reps);
    let mut hazard_ns = Vec::with_capacity(reps);
    let mut reports = (None, None);
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &protocol,
            config_from(&counts),
            UniformCountScheduler::new(),
            Philox4x32::stream(0, 7),
        );
        let plain = engine.run_until_silent(u64::MAX / 2).unwrap();
        plain_ns.push(t0.elapsed().as_nanos() as f64);
        let t1 = Instant::now();
        let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
            &protocol,
            config_from(&counts),
            UniformCountScheduler::new(),
            Philox4x32::stream(0, 7),
        );
        let mut hazard_rng = Philox4x32::stream(0, 7 | 1 << 63);
        let outcome = run_with_hazards(
            &mut engine,
            &HazardPlan::new(),
            &[],
            &mut hazard_rng,
            u64::MAX / 2,
        )
        .unwrap();
        hazard_ns.push(t1.elapsed().as_nanos() as f64);
        assert!(outcome.stabilized);
        assert_eq!(
            outcome.report, plain,
            "an empty hazard plan must replay the plain run byte-identically"
        );
        reports = (Some(plain), Some(outcome.report));
    }
    plain_ns.sort_by(f64::total_cmp);
    hazard_ns.sort_by(f64::total_cmp);
    let ratio = hazard_ns[reps / 2] / plain_ns[reps / 2];
    assert!(
        ratio <= 1.5,
        "fault-free hazard overhead should be ~1x, measured {ratio:.2}x"
    );
    criterion::report_external("hazards/fault_free_overhead_x", ratio, reps);
    println!(
        "hazards: fault-free overhead {ratio:.2}x at n = 10^{} (reports identical: {})",
        (n as f64).log10() as u32,
        reports.0 == reports.1,
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

/// The CI hazard schedule: eight events spread over the first `8n`
/// interactions, covering crash, corruption and both churn directions.
fn ci_schedule(n: u64) -> HazardPlan {
    let mut plan = HazardPlan::new();
    for i in 0..8u64 {
        plan.push(Hazard {
            at_step: (i + 1) * n,
            kind: match i % 4 {
                0 => HazardKind::Crash,
                1 => HazardKind::Corrupt,
                2 => HazardKind::Arrive,
                _ => HazardKind::Depart,
            },
        });
    }
    plan
}

/// Part 2: the full-scale hazard row.
fn bench_hazard_large_n(c: &mut Criterion) {
    let k = 30u16;
    let n: u64 = 1_000_000_000;
    let protocol = CirclesProtocol::new(k).unwrap();
    let losers = u64::from(k) - 1;
    let mut counts = vec![(Color(0), n - losers)];
    counts.extend((1..k).map(|c| (Color(c), 1)));
    let plan = ci_schedule(n);
    let table = TableCache::from_env().map(|cache| cache.load_or_empty(&protocol).0);
    let run = |seed: u64| -> HazardReport {
        let mut hazard_rng = Philox4x32::stream(0, seed | 1 << 63);
        match &table {
            Some(table) => {
                let mut engine = CompactCountEngine::<_, _, Philox4x32>::with_table_rng(
                    &protocol,
                    config_from(&counts),
                    UniformCountScheduler::new(),
                    Philox4x32::stream(0, seed),
                    table,
                );
                run_circles_hazards(
                    &mut engine,
                    Some(Color(0)),
                    &plan,
                    &counts,
                    &mut hazard_rng,
                    u64::MAX / 2,
                )
                .unwrap()
            }
            None => {
                let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
                    &protocol,
                    config_from(&counts),
                    UniformCountScheduler::new(),
                    Philox4x32::stream(0, seed),
                );
                run_circles_hazards(
                    &mut engine,
                    Some(Color(0)),
                    &plan,
                    &counts,
                    &mut hazard_rng,
                    u64::MAX / 2,
                )
                .unwrap()
            }
        }
    };
    let t0 = Instant::now();
    let mut last = None;
    for seed in 0..3 {
        let report = run(seed);
        assert!(
            report.stabilized && report.correct,
            "n = 10^9 hazard run must recover the winner: {report:?}"
        );
        assert_eq!(
            report.final_n, n,
            "one arrival and one departure must cancel"
        );
        assert_eq!(report.hazards_applied, 8);
        last = Some(report);
    }
    let elapsed_ns = t0.elapsed().as_nanos() as f64;
    let last = last.unwrap();
    criterion::report_external("hazards/large_n_ns", elapsed_ns, 3);
    criterion::report_external(
        "hazards/large_n_recovery_changes",
        last.recovery_changes as f64,
        1,
    );
    println!(
        "hazards: 3-seed n=10^9 k=30 sweep ({}) in {:.1}ms; last seed: damage={}, \
         recovery_changes={}",
        if table.is_some() { "warm" } else { "cold" },
        elapsed_ns / 1e6,
        last.conservation_damage,
        last.recovery_changes,
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_fault_free_overhead, bench_hazard_large_n);
criterion_main!(benches);
