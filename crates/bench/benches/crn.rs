//! CRN-layer throughput: network construction, Gillespie firing rate, and
//! mean-field integration speed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_crn::{MeanField, ReactionNetwork, StochasticSimulation};
use pp_protocol::{CountConfig, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn network_for(k: u16) -> (CirclesProtocol, ReactionNetwork<CirclesState>) {
    let protocol = CirclesProtocol::new(k).unwrap();
    let support: Vec<CirclesState> = (0..k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).unwrap();
    (protocol, network)
}

fn initial_for(protocol: &CirclesProtocol, n: usize) -> CountConfig<CirclesState> {
    let k = protocol.k();
    let mut initial = CountConfig::new();
    // Geometric-ish profile with a strict leader.
    let mut remaining = n;
    for i in 0..k {
        let share = if i + 1 == k {
            remaining
        } else {
            (remaining * 3).div_ceil(5)
        };
        initial.insert(protocol.input(&Color(i)), share);
        remaining -= share;
        if remaining == 0 {
            break;
        }
    }
    initial
}

fn bench_network_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("crn_network_closure");
    group.sample_size(10);
    for k in [3u16, 6, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            b.iter(|| {
                let (_, network) = network_for(k);
                network.reaction_count()
            })
        });
    }
    group.finish();
}

fn bench_gillespie_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("crn_gillespie_steps");
    group.sample_size(10);
    const STEPS: u64 = 20_000;
    group.throughput(Throughput::Elements(STEPS));
    for (n, k) in [(1_024usize, 4u16), (65_536, 4), (1_024, 8)] {
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("n{n}_k{k}")),
            &(n, k),
            |b, &(n, k)| {
                let (protocol, network) = network_for(k);
                let initial = initial_for(&protocol, n);
                b.iter(|| {
                    let mut sim = StochasticSimulation::new(&network, &initial).unwrap();
                    let mut rng = StdRng::seed_from_u64(7);
                    let mut fired = 0u64;
                    while fired < STEPS {
                        if sim.step(&mut rng).is_none() {
                            break; // silent early: restart measures the same work
                        }
                        fired += 1;
                    }
                    (fired, sim.time())
                })
            },
        );
    }
    group.finish();
}

fn bench_meanfield_integration(c: &mut Criterion) {
    let mut group = c.benchmark_group("crn_meanfield_rk4");
    group.sample_size(10);
    for k in [3u16, 6] {
        group.bench_with_input(BenchmarkId::from_parameter(format!("k{k}")), &k, |b, &k| {
            let (protocol, network) = network_for(k);
            let initial = initial_for(&protocol, 1_000_000);
            let x0 = network.densities(&network.counts_from_config(&initial).unwrap());
            let field = MeanField::new(&network);
            b.iter(|| field.integrate(x0.clone(), 5.0, 0.01, |_, _| ()).unwrap())
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_network_construction,
    bench_gillespie_steps,
    bench_meanfield_integration
);
criterion_main!(benches);
