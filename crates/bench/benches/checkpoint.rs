//! Run-checkpoint benches: the fault-free overhead contract and the
//! `.pprc` write/load/resume cost rows.
//!
//! Two parts:
//!
//! 1. `checkpoint_overhead` — the checkpointed driver with a hook that
//!    builds (but does not persist) a full [`RunCheckpoint`] every 64 state
//!    changes, against the plain `run_until_silent` of the same seed, on
//!    the fault-free `n = 10^9`, `k = 30` near-unanimous workload (the
//!    `hazards` bench's regime: state changes stay `O(k²)`, so full
//!    population scale is CI-affordable). Hooks observe without drawing, so
//!    the reports must be byte-identical (asserted), and the wall-clock
//!    ratio must stay within the robustness contract's **≤ 1.05×** bound
//!    (asserted; each sample loops several runs and the ratio compares
//!    medians, so scheduler noise does not masquerade as overhead).
//!    Reported as `checkpoint/overhead_x` — a ratio row, exempt from the
//!    2× trend gate.
//! 2. `checkpoint_codec` — save the silent engine's checkpoint to disk,
//!    load it back, resume an engine from it, and assert the resumed
//!    engine reports byte-identically. Reported as `checkpoint/save_ns`,
//!    `checkpoint/load_ns`, `checkpoint/resume_ns` and
//!    `checkpoint/file_bytes` (all medians; `file_bytes` is deterministic,
//!    so its trend ratio is exactly 1 unless the format changes).
//!
//! When `PP_TABLE_CACHE` holds the k = 30 store (CI's `store-cache`
//! artifact), part 1 runs warm through the compact engine; the trajectory —
//! and therefore every assertion — is identical either way.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_analysis::table_cache::TableCache;
use pp_protocol::{
    run_checkpoint, Activity, CompactCountEngine, CountConfig, CountEngine, RunCheckpoint,
    SparseActivity, UniformCountScheduler,
};
use rand::rngs::Philox4x32;

/// Near-unanimous color counts at `n` agents and `k` colors.
fn config(n: u64, k: u16) -> CountConfig<CirclesState> {
    let losers = u64::from(k) - 1;
    let mut counts = CountConfig::new();
    counts.insert(
        CirclesState::initial(Color(0)),
        (n - losers).try_into().expect("count fits a usize"),
    );
    for c in 1..k {
        counts.insert(CirclesState::initial(Color(c)), 1);
    }
    counts
}

fn median(mut xs: Vec<f64>) -> f64 {
    xs.sort_by(f64::total_cmp);
    xs[xs.len() / 2]
}

/// Part 1 worker, generic over the activity index so the warm (compact)
/// and cold (sparse) paths share one measurement loop.
fn measure_overhead<'p, A, F>(make: F, reps: usize, loops: usize) -> (f64, u64)
where
    A: Activity,
    F: Fn() -> CountEngine<'p, CirclesProtocol, UniformCountScheduler, A, Philox4x32>,
{
    let mut plain_ns = Vec::with_capacity(reps);
    let mut hooked_ns = Vec::with_capacity(reps);
    let mut offers_total = 0u64;
    for _ in 0..reps {
        let t0 = Instant::now();
        let mut plain_report = None;
        for _ in 0..loops {
            let mut engine = make();
            plain_report = Some(engine.run_until_silent(u64::MAX / 2).unwrap());
        }
        plain_ns.push(t0.elapsed().as_nanos() as f64);

        let t1 = Instant::now();
        let mut hooked_report = None;
        for _ in 0..loops {
            let mut engine = make();
            let mut offers = 0u64;
            let report = engine
                .run_until_silent_checkpointed(u64::MAX / 2, 64, |e| {
                    let ck = e.checkpoint();
                    std::hint::black_box(&ck);
                    offers += 1;
                    std::ops::ControlFlow::Continue(())
                })
                .unwrap();
            offers_total += offers;
            hooked_report = Some(report);
        }
        hooked_ns.push(t1.elapsed().as_nanos() as f64);
        assert_eq!(
            hooked_report, plain_report,
            "checkpoint hooks must not perturb the trajectory"
        );
    }
    (median(hooked_ns) / median(plain_ns), offers_total)
}

/// Part 1: fault-free checkpointing must cost ≤ 1.05× the plain run.
fn bench_checkpoint_overhead(c: &mut Criterion) {
    let k = 30u16;
    let n: u64 = if criterion::quick_mode() {
        10_000_000
    } else {
        1_000_000_000
    };
    let reps = 9;
    let loops = 5;
    let protocol = CirclesProtocol::new(k).unwrap();
    let table = TableCache::from_env()
        .map(|cache| cache.load_or_empty(&protocol).0)
        .filter(|table| !table.is_empty());
    let (ratio, offers) = match &table {
        Some(table) => measure_overhead(
            || {
                CompactCountEngine::<_, _, Philox4x32>::with_table_rng(
                    &protocol,
                    config(n, k),
                    UniformCountScheduler::new(),
                    Philox4x32::stream(0, 9),
                    table,
                )
            },
            reps,
            loops,
        ),
        None => measure_overhead(
            || {
                CountEngine::<_, _, SparseActivity, _>::with_rng(
                    &protocol,
                    config(n, k),
                    UniformCountScheduler::new(),
                    Philox4x32::stream(0, 9),
                )
            },
            reps,
            loops,
        ),
    };
    assert!(offers > 0, "the checkpoint hook must actually fire");
    assert!(
        ratio <= 1.05,
        "fault-free checkpointing must stay within 1.05x of the plain run, measured {ratio:.3}x"
    );
    criterion::report_external("checkpoint/overhead_x", ratio, reps);
    println!(
        "checkpoint: fault-free overhead {ratio:.3}x at n = 10^{} ({}, {} hook offers)",
        (n as f64).log10() as u32,
        if table.is_some() { "warm" } else { "cold" },
        offers,
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

/// Part 2: `.pprc` save/load/resume costs, plus resume exactness.
fn bench_checkpoint_codec(c: &mut Criterion) {
    let k = 30u16;
    let n: u64 = if criterion::quick_mode() {
        10_000_000
    } else {
        1_000_000_000
    };
    let reps = 9;
    let protocol = CirclesProtocol::new(k).unwrap();
    let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
        &protocol,
        config(n, k),
        UniformCountScheduler::new(),
        Philox4x32::stream(0, 11),
    );
    let report = engine.run_until_silent(u64::MAX / 2).unwrap();
    let ck = engine.checkpoint();
    let path =
        std::env::temp_dir().join(format!("pp-bench-checkpoint-{}.pprc", std::process::id()));

    let mut save_ns = Vec::with_capacity(reps);
    let mut file_bytes = 0u64;
    for _ in 0..reps {
        let t = Instant::now();
        let meta = run_checkpoint::save(&ck, &path).unwrap();
        save_ns.push(t.elapsed().as_nanos() as f64);
        file_bytes = meta.file_bytes;
    }

    let mut load_ns = Vec::with_capacity(reps);
    let mut loaded = None;
    for _ in 0..reps {
        let t = Instant::now();
        let back: RunCheckpoint<CirclesState> = run_checkpoint::load(&protocol, &path).unwrap();
        load_ns.push(t.elapsed().as_nanos() as f64);
        loaded = Some(back);
    }
    let loaded = loaded.unwrap();

    let mut resume_ns = Vec::with_capacity(reps);
    let mut resumed_report = None;
    for _ in 0..reps {
        let t = Instant::now();
        let resumed = CountEngine::<_, _, SparseActivity, Philox4x32>::resume(
            &protocol,
            UniformCountScheduler::new(),
            &loaded,
        )
        .unwrap();
        resume_ns.push(t.elapsed().as_nanos() as f64);
        resumed_report = Some(resumed.report());
    }
    assert_eq!(
        resumed_report.unwrap(),
        report,
        "a resumed silent engine must report byte-identically"
    );
    let _ = std::fs::remove_file(&path);

    criterion::report_external("checkpoint/save_ns", median(save_ns), reps);
    criterion::report_external("checkpoint/load_ns", median(load_ns), reps);
    criterion::report_external("checkpoint/resume_ns", median(resume_ns), reps);
    criterion::report_external("checkpoint/file_bytes", file_bytes as f64, 1);
    println!(
        "checkpoint: {file_bytes}-byte file at n = 10^{} ({} slots)",
        (n as f64).log10() as u32,
        ck.states.len(),
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_checkpoint_overhead, bench_checkpoint_codec);
criterion_main!(benches);
