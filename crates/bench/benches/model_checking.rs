//! Model-checker throughput: configurations explored per second and
//! end-to-end verification latency on representative instances.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use circles_core::Color;
use pp_mc::circles::{verify_circles_full, verify_circles_instance};
use pp_mc::ExploreLimits;

fn instance(profile: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in profile.iter().enumerate() {
        inputs.extend(std::iter::repeat_n(Color(color as u16), count));
    }
    inputs
}

fn bench_verify_brakets(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_weak_fairness");
    group.sample_size(10);
    for (name, profile, k) in [
        ("k2_n8", vec![5usize, 3], 2u16),
        ("k3_n7", vec![3, 2, 2], 3),
        ("k4_n6", vec![2, 2, 1, 1], 4),
    ] {
        let inputs = instance(&profile);
        group.bench_with_input(BenchmarkId::from_parameter(name), &inputs, |b, inputs| {
            b.iter(|| {
                let report = verify_circles_instance(inputs, k, ExploreLimits::default()).unwrap();
                assert!(report.verified);
                report.config_count
            })
        });
    }
    group.finish();
}

fn bench_verify_full(c: &mut Criterion) {
    let mut group = c.benchmark_group("verify_full_state_space");
    group.sample_size(10);
    for (name, profile, k) in [
        ("k2_n6", vec![4usize, 2], 2u16),
        ("k3_n5", vec![2, 2, 1], 3),
    ] {
        let inputs = instance(&profile);
        group.bench_with_input(BenchmarkId::from_parameter(name), &inputs, |b, inputs| {
            b.iter(|| {
                let report = verify_circles_full(inputs, k, ExploreLimits::default()).unwrap();
                assert!(report.eventually_silent);
                report.config_count
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_verify_brakets, bench_verify_full);
criterion_main!(benches);
