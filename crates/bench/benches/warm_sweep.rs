//! Warm-table multi-seed sweep at `k = 30`: the amortized-discovery claim,
//! plus the sweep-level determinism surface CI diffs byte-for-byte.
//!
//! A 16-seed sweep on the count backend is dominated, cold, by 16
//! repetitions of the identical `O(slots²)` protocol-transition discovery.
//! With one [`TransitionTable`] threaded through the sweep (`TrialRunner`'s
//! warm path), seed 1 discovers once and seeds 2..16 materialize the
//! structure lazily from table snapshots — *zero protocol calls* for
//! table-known pairs, and (since the canonical-slot-order work) trajectories
//! bit-identical to cold runs. This bench counts both discovery bills in
//! protocol transition calls and **asserts the warm sweep makes ≥ 10× fewer
//! discovery calls than 16 cold runs** (structural expectation: 16×, since
//! warm materialization makes none). Wall-clock for both paths is reported
//! for the trend diff; the canonical lazy path trades the former bulk-load
//! memcpy for snapshot lookups, so its time row carries a fresh label
//! (`warm_materialize_ns`) starting its own baseline.
//!
//! The end-to-end 16-seed warm sweep runs through
//! `TrialRunner::run_with_table` on `PP_BENCH_THREADS` workers (default:
//! all CPUs) and, when `PP_WARM_SWEEP_REPORT` names a file, writes one JSON
//! line per trial (seed + measurements, no timings). CI runs the bench at
//! two thread counts and diffs the two reports byte-for-byte — the
//! executable form of "bench rows are thread-count-independent".
//!
//! Reported rows: `warm_sweep/cold_discovery_ns` (one cold discovery),
//! `warm_sweep/warm_materialize_ns` (one lazy warm materialization of the
//! same slot set + export), `warm_sweep/discovery_call_ratio_x` (16 cold
//! bills over the warm bill, in transition calls),
//! `warm_sweep/discovery_time_ratio_x` (same in wall-clock),
//! `warm_sweep/sweep_ns` (the end-to-end warm sweep),
//! `warm_sweep/deep_snapshot_ns` / `warm_sweep/epoch_snapshot_ns` /
//! `warm_sweep/snapshot_cost_ratio_x` (the deep-clone baseline vs the
//! epoch-snapshot handle on the populated table, asserted ≥ 50×).

use std::cell::Cell;
use std::io::Write;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState};
use pp_analysis::table_cache::TableCache;
use pp_analysis::trial::{Backend, TrialRunner};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::{
    CompactCountEngine, CountConfig, CountEngine, Protocol, TransitionTable, UniformCountScheduler,
};

// `k = 30` is the regime where discovery dominates; `n = 3000` keeps the
// sixteen end-to-end runs CI-sized (the slot table is ~5×10³ here — the
// ≥ 10^4-slot compact-footprint criterion lives in the `discovery` bench).
const K: u16 = 30;
const N: usize = 3_000;
const SEEDS: u64 = 16;

/// Forwards to an inner protocol while counting transition calls.
struct CallCounter<'a> {
    inner: &'a CirclesProtocol,
    calls: Cell<u64>,
}

impl Protocol for CallCounter<'_> {
    type State = CirclesState;
    type Input = circles_core::Color;
    type Output = circles_core::Color;

    fn name(&self) -> &str {
        self.inner.name()
    }

    fn input(&self, input: &Self::Input) -> Self::State {
        self.inner.input(input)
    }

    fn output(&self, state: &Self::State) -> Self::Output {
        self.inner.output(state)
    }

    fn transition(&self, a: &Self::State, b: &Self::State) -> (Self::State, Self::State) {
        self.calls.set(self.calls.get() + 1);
        self.inner.transition(a, b)
    }

    fn is_symmetric(&self) -> bool {
        self.inner.is_symmetric()
    }
}

fn bench_warm_sweep(c: &mut Criterion) {
    let protocol = CirclesProtocol::new(K).unwrap();
    let inputs = margin_workload(N, K, N / 10);
    let expected = true_winner(&inputs, K);
    let config: CountConfig<CirclesState> = inputs.iter().map(|i| protocol.input(i)).collect();

    // Scout: the state set every trial of this workload discovers.
    let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
    scout.run_until_silent(u64::MAX / 2).unwrap();
    let states: Vec<CirclesState> = scout.known_states().to_vec();
    let slots = states.len();
    assert!(
        slots >= 5_000,
        "sweep workload must exercise thousands of slots"
    );

    // One cold discovery bill, in wall-clock and transition calls. Median
    // of two samples to absorb timer noise.
    let cold_sample = || {
        let counter = CallCounter {
            inner: &protocol,
            calls: Cell::new(0),
        };
        let counted_config: CountConfig<CirclesState> =
            inputs.iter().map(|i| counter.input(i)).collect();
        let mut engine = CountEngine::from_config(&counter, counted_config, 7);
        let start = Instant::now();
        engine.prime_states(states.iter().copied());
        (start.elapsed().as_nanos() as f64, counter.calls.get())
    };
    let (a, b) = (cold_sample(), cold_sample());
    let (cold_discovery_ns, cold_calls) = if a.0 < b.0 { a } else { b };

    // One warm bill: materialize the same slot set lazily from the table
    // snapshot plus the export a warm trial performs afterwards, on the
    // compact engine warm trials actually use. Median of three. The table
    // was discovered by the plain protocol, so the counter sees exactly
    // the calls the warm path still needs (structurally: none).
    let counted_table: TransitionTable<CallCounter<'_>> = {
        // The scout table rebuilt under the counting protocol's type: same
        // seed, same workload, so the discovered structure is identical.
        let counter = CallCounter {
            inner: &protocol,
            calls: Cell::new(0),
        };
        let counted_config: CountConfig<CirclesState> =
            inputs.iter().map(|i| counter.input(i)).collect();
        let mut engine = CountEngine::from_config(&counter, counted_config, 7);
        engine.run_until_silent(u64::MAX / 2).unwrap();
        engine.warm_table()
    };
    let warm_sample = || {
        let counter = CallCounter {
            inner: &protocol,
            calls: Cell::new(0),
        };
        let counted_config: CountConfig<CirclesState> =
            inputs.iter().map(|i| counter.input(i)).collect();
        let start = Instant::now();
        let mut engine = CompactCountEngine::with_table_parts(
            &counter,
            counted_config,
            UniformCountScheduler::new(),
            7,
            &counted_table,
        );
        engine.prime_states(states.iter().copied());
        assert_eq!(
            engine.slots(),
            counted_table.len(),
            "lazy materialization must cover the scout's whole slot set"
        );
        engine.export_to(&counted_table);
        (start.elapsed().as_nanos() as f64, counter.calls.get())
    };
    let mut warm_samples = [warm_sample(), warm_sample(), warm_sample()];
    warm_samples.sort_by(|x, y| x.0.partial_cmp(&y.0).expect("finite times"));
    let (warm_materialize_ns, warm_calls) = warm_samples[1];

    // Discovery bills: 16 cold discoveries vs 1 discovery + 15 warm
    // materializations — in protocol calls (the asserted invariant: warm
    // materialization replaces every call with a snapshot lookup) and in
    // wall-clock (reported for the trend).
    let call_bill_cold = (cold_calls * SEEDS) as f64;
    let call_bill_warm = (cold_calls + warm_calls * (SEEDS - 1)) as f64;
    let call_ratio = call_bill_cold / call_bill_warm;
    let time_bill_cold = cold_discovery_ns * SEEDS as f64;
    let time_bill_warm = cold_discovery_ns + warm_materialize_ns * (SEEDS - 1) as f64;
    let time_ratio = time_bill_cold / time_bill_warm;
    criterion::report_external("warm_sweep/slots", slots as f64, 1);
    criterion::report_external("warm_sweep/cold_discovery_ns", cold_discovery_ns, 2);
    criterion::report_external("warm_sweep/cold_discovery_calls", cold_calls as f64, 1);
    criterion::report_external("warm_sweep/warm_materialize_ns", warm_materialize_ns, 3);
    criterion::report_external("warm_sweep/warm_materialize_calls", warm_calls as f64, 1);
    criterion::report_external("warm_sweep/discovery_call_ratio_x", call_ratio, 1);
    criterion::report_external("warm_sweep/discovery_time_ratio_x", time_ratio, 1);
    println!(
        "warm_sweep: k={K} slots={slots}; cold discovery {cold_calls} calls \
         ({:.2}s)/seed vs warm materialization {warm_calls} calls ({:.1}ms)/seed \
         => 16-seed discovery bill {call_ratio:.1}x smaller in calls, \
         {time_ratio:.1}x in wall-clock",
        cold_discovery_ns / 1e9,
        warm_materialize_ns / 1e6,
    );
    assert!(
        call_ratio >= 10.0,
        "a 16-seed warm sweep must pay >= 10x fewer protocol transition \
         calls for discovery than 16 cold runs, got {call_ratio:.1}x"
    );

    // The real sweep, end-to-end: fresh table, first seed warms it
    // serially, the rest fan out against snapshots of it. Thread count is
    // configurable so CI can assert the report is thread-independent.
    let threads: usize = match pp_bench::env_override::<usize>("PP_BENCH_THREADS") {
        Some(0) => {
            pp_bench::env_override_fail("PP_BENCH_THREADS", "0", "thread count must be at least 1")
        }
        Some(threads) => threads,
        None => 0, // unset: defer to the runner's default (all CPUs)
    };
    // When a table cache is configured (CI shares the k = 30 store built by
    // the `table-store` job via `PP_TABLE_CACHE`), start the sweep from the
    // cached table instead of rediscovering it — trial reports are
    // bit-identical either way, the cache only moves the discovery bill.
    let table = match TableCache::from_env() {
        Some(cache) => cache.load_or_empty(&protocol).0,
        None => TransitionTable::new(),
    };
    let mut runner = TrialRunner::new(Backend::Count).seeds(SEEDS);
    if threads > 0 {
        runner = runner.threads(threads);
    }
    let start = Instant::now();
    let results = runner.run_with_table(&protocol, &inputs, expected, &table);
    let sweep_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(results.len(), SEEDS as usize);
    assert!(
        results.iter().all(|r| r.stabilized && r.correct),
        "every warm trial must stabilize on the winner"
    );
    // Seeds other than the scout's can visit extra states, so the table
    // can exceed the scout's slot count but never undershoot it by much.
    assert!(table.len() >= 5_000, "the sweep populated the table");
    criterion::report_external("warm_sweep/sweep_ns", sweep_ns, 1);
    println!(
        "warm_sweep: 16-seed warm sweep to silence in {:.2}s (table: {} states, \
         {} active pairs, {} outcomes)",
        sweep_ns / 1e9,
        table.len(),
        table.active_pairs(),
        table.outcome_count(),
    );

    // Snapshot-cost gate: an epoch snapshot is an Arc bump plus a segment
    // watermark, so against the deep-clone baseline (what every warm trial
    // paid per capture before epoch snapshots) it must be >= 50x cheaper on
    // this populated k = 30 table. Deep clones are sampled thrice (median);
    // the cheap handle is amortized over a loop since a single capture sits
    // at timer resolution.
    let deep_snapshot_ns = {
        let mut samples = [0f64; 3];
        for s in &mut samples {
            let start = Instant::now();
            let deep = table.snapshot_deep();
            *s = start.elapsed().as_nanos() as f64;
            assert_eq!(deep.len(), table.len(), "deep clone covers the table");
        }
        samples.sort_by(|x, y| x.partial_cmp(y).expect("finite times"));
        samples[1]
    };
    let epoch_snapshot_ns = {
        const CAPTURES: u32 = 4096;
        let start = Instant::now();
        for _ in 0..CAPTURES {
            std::hint::black_box(table.snapshot());
        }
        start.elapsed().as_nanos() as f64 / f64::from(CAPTURES)
    };
    let snapshot_ratio = deep_snapshot_ns / epoch_snapshot_ns.max(1.0);
    criterion::report_external("warm_sweep/deep_snapshot_ns", deep_snapshot_ns, 3);
    criterion::report_external("warm_sweep/epoch_snapshot_ns", epoch_snapshot_ns, 1);
    criterion::report_external("warm_sweep/snapshot_cost_ratio_x", snapshot_ratio, 1);
    println!(
        "warm_sweep: deep snapshot {:.1}us vs epoch snapshot {:.0}ns per capture \
         => {snapshot_ratio:.0}x cheaper",
        deep_snapshot_ns / 1e3,
        epoch_snapshot_ns,
    );
    assert!(
        snapshot_ratio >= 50.0,
        "an epoch snapshot of a populated k = 30 table must be >= 50x cheaper \
         than the deep-clone baseline, got {snapshot_ratio:.1}x"
    );

    // Timing-free trial report for the CI determinism diff: identical
    // bytes at every thread count, or the sweep is not reproducible.
    if let Ok(path) = std::env::var("PP_WARM_SWEEP_REPORT") {
        let mut out = std::fs::File::create(&path).expect("report file creatable");
        for (seed, r) in results.iter().enumerate() {
            writeln!(
                out,
                "{{\"seed\":{seed},\"steps_to_silence\":{},\"steps_to_consensus\":{},\
                 \"state_changes\":{},\"stabilized\":{},\"correct\":{}}}",
                r.steps_to_silence, r.steps_to_consensus, r.state_changes, r.stabilized, r.correct,
            )
            .expect("report line written");
        }
        println!("warm_sweep: trial report written to {path}");
    }
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_warm_sweep);
criterion_main!(benches);
