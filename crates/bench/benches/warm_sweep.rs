//! Warm-table multi-seed sweep at `k = 30`: the amortized-discovery claim.
//!
//! A 16-seed sweep on the count backend is dominated, cold, by 16
//! repetitions of the identical `O(slots²)` slot/transition discovery. With
//! one [`TransitionTable`] threaded through the sweep (`TrialRunner`'s warm
//! path), seed 1 discovers once and seeds 2..16 bulk-load the structure in
//! `O(slots + pairs)`. This bench measures both discovery bills directly
//! and **asserts the warm sweep spends ≥ 10× less wall-clock on discovery
//! than 16 cold runs** (structural expectation ≈ 16× minus the loads). It
//! also runs the actual 16-seed warm sweep end-to-end through
//! `TrialRunner::run_with_table` and checks every trial stabilized on the
//! correct winner.
//!
//! Reported rows: `warm_sweep/cold_discovery_ns` (one cold discovery),
//! `warm_sweep/warm_load_ns` (one warm bulk-load + no-op export),
//! `warm_sweep/discovery_ratio_x` (16 cold bills over the warm bill),
//! `warm_sweep/sweep_ns` (the end-to-end warm sweep).

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};

use circles_core::{CirclesProtocol, CirclesState};
use pp_analysis::trial::{Backend, TrialRunner};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::{
    CompactCountEngine, CountConfig, CountEngine, Protocol, TransitionTable, UniformCountScheduler,
};

// `k = 30` is the regime where discovery dominates; `n = 3000` keeps the
// sixteen end-to-end runs CI-sized (the slot table is ~5×10³ here — the
// ≥ 10^4-slot compact-footprint criterion lives in the `discovery` bench).
const K: u16 = 30;
const N: usize = 3_000;
const SEEDS: u64 = 16;

fn bench_warm_sweep(c: &mut Criterion) {
    let protocol = CirclesProtocol::new(K).unwrap();
    let inputs = margin_workload(N, K, N / 10);
    let expected = true_winner(&inputs, K);
    let config: CountConfig<CirclesState> = inputs.iter().map(|i| protocol.input(i)).collect();

    // Scout: the state set every trial of this workload discovers.
    let mut scout = CountEngine::from_config(&protocol, config.clone(), 7);
    scout.run_until_silent(u64::MAX / 2).unwrap();
    let states: Vec<CirclesState> = scout.known_states().to_vec();
    let slots = states.len();
    assert!(
        slots >= 5_000,
        "sweep workload must exercise thousands of slots"
    );
    let full_table = scout.warm_table();

    // One cold discovery bill: what every cold trial pays again. Median of
    // two samples to absorb timer noise.
    let cold_sample = || {
        let mut engine = CountEngine::from_config(&protocol, config.clone(), 7);
        let start = Instant::now();
        engine.prime_states(states.iter().copied());
        start.elapsed().as_nanos() as f64
    };
    let (a, b) = (cold_sample(), cold_sample());
    let cold_discovery_ns = a.min(b);

    // One warm bill: bulk-load from the table plus the no-op export a
    // warm trial performs afterwards, on the compact engine warm trials
    // actually use (same compressed rows as the table). Median of three.
    let warm_sample = || {
        let start = Instant::now();
        let engine = CompactCountEngine::with_table_parts(
            &protocol,
            config.clone(),
            UniformCountScheduler::new(),
            7,
            &full_table,
        );
        engine.export_to(&full_table);
        assert_eq!(engine.warm_slots(), slots);
        start.elapsed().as_nanos() as f64
    };
    let mut warm_samples = [warm_sample(), warm_sample(), warm_sample()];
    warm_samples.sort_by(|x, y| x.partial_cmp(y).expect("finite times"));
    let warm_load_ns = warm_samples[1];

    // Discovery bills: 16 cold discoveries vs 1 discovery + 15 loads.
    let cold_bill = cold_discovery_ns * SEEDS as f64;
    let warm_bill = cold_discovery_ns + warm_load_ns * (SEEDS - 1) as f64;
    let ratio = cold_bill / warm_bill;
    criterion::report_external("warm_sweep/slots", slots as f64, 1);
    criterion::report_external("warm_sweep/cold_discovery_ns", cold_discovery_ns, 2);
    criterion::report_external("warm_sweep/warm_load_ns", warm_load_ns, 3);
    criterion::report_external("warm_sweep/discovery_ratio_x", ratio, 1);
    println!(
        "warm_sweep: k={K} slots={slots}; cold discovery {:.2}s/seed vs warm load \
         {:.1}ms/seed => 16-seed discovery bill {ratio:.1}x smaller warm",
        cold_discovery_ns / 1e9,
        warm_load_ns / 1e6,
    );
    assert!(
        ratio >= 10.0,
        "a 16-seed warm sweep must spend >= 10x less wall-clock on discovery \
         than 16 cold runs, got {ratio:.1}x"
    );

    // The real sweep, end-to-end: fresh table, first seed warms it
    // serially, the rest fan out loading it.
    let table = TransitionTable::new();
    let runner = TrialRunner::new(Backend::Count).seeds(SEEDS);
    let start = Instant::now();
    let results = runner.run_with_table(&protocol, &inputs, expected, &table);
    let sweep_ns = start.elapsed().as_nanos() as f64;
    assert_eq!(results.len(), SEEDS as usize);
    assert!(
        results.iter().all(|r| r.stabilized && r.correct),
        "every warm trial must stabilize on the winner"
    );
    // Seeds other than the scout's can visit extra states, so the table
    // can exceed the scout's slot count but never undershoot it by much.
    assert!(table.len() >= 5_000, "the sweep populated the table");
    criterion::report_external("warm_sweep/sweep_ns", sweep_ns, 1);
    println!(
        "warm_sweep: 16-seed warm sweep to silence in {:.2}s (table: {} states, \
         {} active pairs, {} outcomes)",
        sweep_ns / 1e9,
        table.len(),
        table.active_pairs(),
        table.outcome_count(),
    );
    let _ = c; // one-shot measurement; no criterion sampling needed
}

criterion_group!(benches, bench_warm_sweep);
criterion_main!(benches);
