//! Regenerates experiment E10 (`ablation`); see DESIGN.md §7.

use pp_analysis::experiments::e10_ablation::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e10_ablation");
}
