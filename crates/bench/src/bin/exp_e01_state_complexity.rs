//! Regenerates experiment E1 (`state_complexity`); see DESIGN.md §7.

use pp_analysis::experiments::e01_state_complexity::{run_with_figures, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e01_state_complexity", &figures);
}
