//! Regenerates experiment E12 (`exact expectations`); see DESIGN.md §7.

use pp_analysis::experiments::e12_exact_expectations::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e12_exact_expectations");
}
