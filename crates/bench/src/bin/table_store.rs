//! Build, inspect and verify on-disk transition-table stores (`.ppts`).
//!
//! The store format is specified in `docs/transition-store-format.md` and
//! implemented by [`pp_protocol::transition_store`]. This tool is the
//! operational surface CI and users drive:
//!
//! ```text
//! table_store build   --k K [--n N] [--seeds S] [--full] [--format v1|v2]
//!                     [--out PATH] [--cache-dir DIR]
//! table_store inspect PATH
//! table_store verify  PATH [--k K] [--audit-pairs N]
//! ```
//!
//! `build` discovers a Circles table — by default the states a 16-seed
//! margin-workload sweep reaches (the set warm sweeps actually reuse), with
//! `--full` the entire `k³` enumerable state space, discovered through the
//! color-orbit quotient (`O(k⁵)` transition calls instead of `O(k⁶)`) —
//! and saves it atomically. `--format v2` writes the quotient layout (one
//! row per canonical representative, `~k×` smaller on disk); it requires
//! `--full`, because only the full enumeration is orbit-closed. `--cache-dir` additionally drops the store into a
//! [`TableCache`] directory under its fingerprint-keyed name, so anything
//! honoring `PP_TABLE_CACHE` (warm sweeps, benches, the stress binary)
//! picks it up without rebuilding. `inspect` prints the verified header of
//! any store without needing a protocol — for v2 stores including the
//! quotient statistics (representatives, orbit factor, v1-vs-v2 bytes). `verify` loads the store
//! (checksum + fingerprint + structural validation, zero protocol calls —
//! a v2 store is expanded through the group action on the way in), then
//! *audits* it by re-deriving pair activity and memoized outcomes through
//! the protocol's own transition function, the one check loading
//! deliberately skips.
//!
//! Exit status: `0` on success, `1` on any store error, `2` on usage
//! errors.

use std::path::PathBuf;
use std::process::ExitCode;

use circles_core::CirclesProtocol;
use pp_analysis::table_cache::TableCache;
use pp_analysis::trial::{Backend, TrialRunner};
use pp_analysis::workloads::{margin_workload, true_winner};
use pp_protocol::transition_store::{self, StoreMeta};
use pp_protocol::{CountConfig, CountEngine, EnumerableProtocol, Protocol, TransitionTable};

const USAGE: &str = "usage:
  table_store build   --k K [--n N] [--seeds S] [--full] [--format v1|v2]
                      [--out PATH] [--cache-dir DIR]
  table_store inspect PATH
  table_store verify  PATH [--k K] [--audit-pairs N]";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("build") => build(&args[1..]),
        Some("inspect") => inspect(&args[1..]),
        Some("verify") => verify(&args[1..]),
        _ => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(Failure::Usage(msg)) => {
            eprintln!("table_store: {msg}\n{USAGE}");
            ExitCode::from(2)
        }
        Err(Failure::Store(msg)) => {
            eprintln!("table_store: {msg}");
            ExitCode::FAILURE
        }
    }
}

enum Failure {
    Usage(String),
    Store(String),
}

impl From<transition_store::StoreError> for Failure {
    fn from(e: transition_store::StoreError) -> Self {
        Failure::Store(e.to_string())
    }
}

/// Pulls the value of `--flag VALUE` out of `args`, parsed.
fn flag_value<T: std::str::FromStr>(args: &[String], flag: &str) -> Result<Option<T>, Failure> {
    match args.iter().position(|a| a == flag) {
        None => Ok(None),
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .map(Some)
            .ok_or_else(|| Failure::Usage(format!("{flag} needs a valid value"))),
    }
}

fn positional(args: &[String]) -> Result<PathBuf, Failure> {
    args.iter()
        .find(|a| !a.starts_with("--") && a.parse::<u64>().is_err())
        .map(PathBuf::from)
        .ok_or_else(|| Failure::Usage("missing store path".into()))
}

fn print_meta(meta: &StoreMeta) {
    println!("protocol:    {}", meta.protocol);
    println!("version:     {}", meta.version);
    println!("fingerprint: {:#018x}", meta.fingerprint);
    println!("param (k):   {}", meta.param);
    println!("symmetric:   {}", meta.symmetric);
    println!("states:      {}", meta.states);
    println!("pairs:       {}", meta.pairs);
    println!("outcomes:    {}", meta.outcomes);
    println!("file bytes:  {}", meta.file_bytes);
    println!("checksum:    {:#018x}", meta.checksum);
    if let Some(q) = &meta.quotient {
        println!(
            "orbits:      {} representative(s), group order {}",
            q.reps, q.group_order
        );
        if q.reps > 0 {
            println!(
                "orbit factor: {:.2} (states per representative)",
                meta.states as f64 / q.reps as f64
            );
        }
        println!(
            "v1 bytes:    {} ({:.1}x larger than this file)",
            q.v1_bytes,
            q.v1_bytes as f64 / meta.file_bytes as f64
        );
    }
}

fn build(args: &[String]) -> Result<(), Failure> {
    let k: u16 =
        flag_value(args, "--k")?.ok_or_else(|| Failure::Usage("build needs --k".into()))?;
    let n: usize = flag_value(args, "--n")?.unwrap_or(3_000);
    let seeds: u64 = flag_value(args, "--seeds")?.unwrap_or(16);
    let full = args.iter().any(|a| a == "--full");
    let format: String = flag_value(args, "--format")?.unwrap_or_else(|| "v1".to_string());
    if !matches!(format.as_str(), "v1" | "v2") {
        return Err(Failure::Usage(format!("unknown --format {format:?}")));
    }
    if format == "v2" && !full {
        return Err(Failure::Usage(
            "--format v2 requires --full: only the full enumeration is orbit-closed".into(),
        ));
    }
    let out: PathBuf =
        flag_value(args, "--out")?.unwrap_or_else(|| PathBuf::from(format!("circles-k{k}.ppts")));

    let protocol = CirclesProtocol::new(k).map_err(|e| Failure::Usage(format!("bad k: {e}")))?;

    let table = if full {
        // The entire k³ state space. With the color-orbit quotient this
        // costs O(k⁵) transition calls (one bra-0 representative per
        // orbit, the rest expanded mechanically); without one, fall back
        // to priming a cold engine — O(k⁶) classifications, halved by
        // symmetry.
        match pp_protocol::quotient_table(&protocol) {
            Ok(full_table) => full_table,
            Err(pp_protocol::QuotientError::Unsupported) => {
                let table = TransitionTable::new();
                let inputs = margin_workload(n.max(usize::from(k) + 2), k, 1);
                let config: CountConfig<_> = inputs.iter().map(|i| protocol.input(i)).collect();
                let mut engine = CountEngine::from_config(&protocol, config, 7);
                engine.prime_states(protocol.states());
                engine.export_to(&table);
                table
            }
            Err(e) => return Err(Failure::Store(e.to_string())),
        }
    } else {
        // Discover what a real sweep reaches: run the same margin workload
        // the warm-sweep bench uses through the warm TrialRunner path.
        let table = TransitionTable::new();
        let inputs = margin_workload(n, k, n / 10);
        let expected = true_winner(&inputs, k);
        let results = TrialRunner::new(Backend::Count)
            .seeds(seeds)
            .run_with_table(&protocol, &inputs, expected, &table);
        if !results.iter().all(|r| r.stabilized) {
            return Err(Failure::Store("discovery sweep failed to stabilize".into()));
        }
        table
    };

    let meta = if format == "v2" {
        transition_store::save_quotient(&table, &protocol, &out)?
    } else {
        transition_store::save(&table, &protocol, &out)?
    };
    eprintln!("wrote {}", out.display());
    print_meta(&meta);

    // Optionally publish the same table into a cache directory under its
    // fingerprint-keyed name — the handoff CI uses to share one build with
    // every job that sets PP_TABLE_CACHE. Saving is deterministic, so this
    // file is byte-identical to `out`.
    if let Some(dir) = flag_value::<PathBuf>(args, "--cache-dir")? {
        let cache = TableCache::new(dir);
        cache.store(&protocol, &table)?;
        eprintln!("cached {}", cache.path_for(&protocol).display());
    }
    Ok(())
}

fn inspect(args: &[String]) -> Result<(), Failure> {
    let path = positional(args)?;
    let meta = transition_store::inspect(&path)?;
    print_meta(&meta);
    Ok(())
}

fn verify(args: &[String]) -> Result<(), Failure> {
    let path = positional(args)?;
    let audit_pairs: u64 = flag_value(args, "--audit-pairs")?.unwrap_or(2_000_000);
    let meta = transition_store::inspect(&path)?;
    if meta.protocol != "circles" {
        return Err(Failure::Usage(format!(
            "verify only knows the circles protocol, store is for {:?}",
            meta.protocol
        )));
    }
    let k: u16 = match flag_value(args, "--k")? {
        Some(k) => k,
        None => u16::try_from(meta.param)
            .map_err(|_| Failure::Store(format!("store param {} is not a valid k", meta.param)))?,
    };
    let protocol = CirclesProtocol::new(k).map_err(|e| Failure::Usage(format!("bad k: {e}")))?;
    let table = transition_store::load(&protocol, &path)?;
    let report = transition_store::audit(&protocol, &table, audit_pairs)?;
    print_meta(&meta);
    println!(
        "audit:       ok ({} state(s), {} pair(s) re-classified, {} outcome(s) re-derived)",
        report.states, report.pairs_checked, report.outcomes_checked
    );
    Ok(())
}
