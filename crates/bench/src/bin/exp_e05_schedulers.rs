//! Regenerates experiment E5 (`schedulers`); see DESIGN.md §7.

use pp_analysis::experiments::e05_schedulers::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e05_schedulers");
}
