//! Runs the full experiment suite E1–E17 in sequence and writes every
//! table (and figure) under `results/`. Pass `--quick` for the CI-scale
//! presets.
//!
//! ```text
//! cargo run --release -p pp-bench --bin run_all_experiments
//! ```

use pp_analysis::experiments as exp;

fn main() {
    let quick = pp_bench::quick_requested();
    macro_rules! run {
        ($module:ident, $basename:literal) => {{
            eprintln!("=== running {} ===", $basename);
            let params = if quick {
                exp::$module::Params::quick()
            } else {
                exp::$module::Params::default()
            };
            let table = exp::$module::run(&params);
            pp_bench::emit(&table, $basename);
        }};
    }
    macro_rules! run_figures {
        ($module:ident, $basename:literal) => {{
            eprintln!("=== running {} ===", $basename);
            let params = if quick {
                exp::$module::Params::quick()
            } else {
                exp::$module::Params::default()
            };
            let (table, figures) = exp::$module::run_with_figures(&params);
            pp_bench::emit_with_figures(&table, $basename, &figures);
        }};
    }
    run_figures!(e01_state_complexity, "e01_state_complexity");
    run_figures!(e02_convergence_n, "e02_convergence_n");
    run!(e03_convergence_k, "e03_convergence_k");
    run!(e04_exchanges, "e04_exchanges");
    run!(e05_schedulers, "e05_schedulers");
    run!(e06_baselines, "e06_baselines");
    run!(e07_ties, "e07_ties");
    run!(e08_unordered, "e08_unordered");
    run!(e09_verification, "e09_verification");
    run!(e10_ablation, "e10_ablation");
    run!(e11_faults, "e11_faults");
    run!(e12_exact_expectations, "e12_exact_expectations");
    run_figures!(e13_meanfield, "e13_meanfield");
    run_figures!(e14_energy, "e14_energy");
    run!(e15_topology, "e15_topology");
    run_figures!(e16_binary_landscape, "e16_binary_landscape");
    run_figures!(e17_propagation, "e17_propagation");
    eprintln!("=== all experiments complete ===");
}
