//! Many-thread stress harness for the lock-free transition-table publisher.
//!
//! ```text
//! stress_racing_exports [--threads N] [--rounds R] [--watchdog-secs S]
//! ```
//!
//! Each round races `N` cold Circles engines (default 32, shifted
//! workloads, distinct seeds) into one shared [`TransitionTable`] while a
//! reader thread concurrently captures epoch snapshots and digests them
//! twice — once mid-race, once after every writer joined. The round then
//! asserts:
//!
//! 1. **Snapshot stability**: both digests of a handle captured mid-race
//!    are identical — published segments are immutable, so a snapshot can
//!    never change under its reader.
//! 2. **Union completeness**: the racing table's state set equals the
//!    union a serial replay of the same engines discovers, every ordered
//!    pair is classified exactly as the protocol classifies it, and every
//!    memoized outcome re-derives through the transition function.
//! 3. **Snapshot coverage**: the final snapshot resolves every id
//!    round-trip (`id_of(state(t)) == t`), i.e. each published segment is
//!    reachable from the handle.
//!
//! When `PP_TABLE_CACHE` points at a cache holding the k = 30 store (CI's
//! `table-store` artifact), a second phase re-runs the race warm: threads
//! capture snapshots of the loaded table and export their (mostly
//! deduplicated) rediscoveries back into it, exercising the
//! outcome-only-segment path under contention.
//!
//! Exit status: `0` on success; any violated invariant panics (non-zero).
//!
//! A wall-clock **watchdog** thread (default 300 s, `--watchdog-secs`, `0`
//! disables) guards the whole run: a deadlocked or livelocked publication
//! race aborts the process with the last recorded phase markers instead of
//! hanging CI until the job-level timeout. The main thread cannot print a
//! dump itself — it is the thread that is stuck — so the watchdog reports
//! the phase registry (what each stage last logged) and `abort()`s, which
//! fails the job in minutes with the stuck phase named.
//!
//! This binary is the `concurrency` CI job's release-mode companion to the
//! ThreadSanitizer suites: TSan watches the small tests for data races,
//! this watches the real protocol at real thread counts for lost updates.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use circles_core::CirclesProtocol;
use pp_analysis::table_cache::TableCache;
use pp_analysis::workloads::margin_workload;
use pp_protocol::{
    CompactCountEngine, CountConfig, CountEngine, Protocol, TableSnapshot, TransitionTable,
    UniformCountScheduler,
};

const K_COLD: u16 = 6;
const N_AGENTS: usize = 240;
const BUDGET: u64 = 2_000_000;

fn flag(args: &[String], name: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The watchdog's view of progress: each stage overwrites its slot with a
/// human-readable marker as it starts, so on a hang the dump names exactly
/// which phase (and round) stopped advancing.
#[derive(Debug, Default)]
struct PhaseRegistry {
    phases: Mutex<Vec<String>>,
}

impl PhaseRegistry {
    fn mark(&self, phase: impl Into<String>) {
        let phase = phase.into();
        let mut phases = self.phases.lock().expect("phase registry lock");
        phases.push(phase);
        // Keep the registry small: only the trailing window matters.
        let excess = phases.len().saturating_sub(16);
        if excess > 0 {
            phases.drain(..excess);
        }
    }

    fn dump(&self) -> String {
        match self.phases.lock() {
            Ok(phases) => phases.join("\n  "),
            Err(_) => "phase registry poisoned".to_string(),
        }
    }
}

/// Starts the wall-clock watchdog: unless the returned flag is set within
/// `limit`, the process prints the phase registry and aborts. The thread is
/// detached — on normal completion it either observes the flag and returns,
/// or dies with the process at exit.
fn start_watchdog(limit: Duration, registry: &Arc<PhaseRegistry>) -> Arc<AtomicBool> {
    let finished = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&finished);
    let registry = Arc::clone(registry);
    std::thread::spawn(move || {
        let deadline = Instant::now() + limit;
        while Instant::now() < deadline {
            if flag.load(Ordering::Acquire) {
                return;
            }
            std::thread::sleep(Duration::from_millis(250));
        }
        if flag.load(Ordering::Acquire) {
            return;
        }
        eprintln!(
            "stress_racing_exports: WATCHDOG: no completion within {}s — \
             the publication race is deadlocked or livelocked.\n\
             last phase markers (most recent last):\n  {}\n\
             aborting so CI fails in minutes instead of hanging at the job timeout",
            limit.as_secs(),
            registry.dump(),
        );
        std::process::abort();
    });
    finished
}

/// Order-independent digest of everything a snapshot serves: states and
/// both row orientations always; the `O(n²)` outcome scan only on small
/// tables (the cold k = 6 rounds), where it is cheap.
fn digest(snap: &TableSnapshot<<CirclesProtocol as Protocol>::State>) -> u64 {
    let mut h = DefaultHasher::new();
    snap.len().hash(&mut h);
    for t in 0..snap.len().min(4096) as u32 {
        snap.state(t).hash(&mut h);
        snap.walk_out(t, |j| {
            j.hash(&mut h);
            true
        });
        snap.walk_in(t, |i| {
            i.hash(&mut h);
            true
        });
    }
    if snap.len() <= 512 {
        for t in 0..snap.len() as u32 {
            for u in 0..snap.len() as u32 {
                if let Some(out) = snap.outcome((t, u)) {
                    (t, u, out).hash(&mut h);
                }
            }
        }
    }
    h.finish()
}

/// The workload thread `t` of `threads` runs: the shared margin workload
/// with colors rotated by thread id, so slices of the state space overlap
/// without coinciding.
fn thread_inputs(t: usize) -> Vec<circles_core::Color> {
    margin_workload(N_AGENTS, K_COLD, N_AGENTS / 8)
        .into_iter()
        .map(|c| circles_core::Color((c.0 + t as u16) % K_COLD))
        .collect()
}

/// Races `threads` cold engines into `table` while a reader digests a
/// mid-race snapshot; returns that snapshot's two digests.
fn race_cold(protocol: &CirclesProtocol, table: &TransitionTable<CirclesProtocol>, threads: usize) {
    let writers_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let reader = scope.spawn(|| {
            // Capture mid-race (whatever has been published so far) and
            // digest immediately; re-digest after the race in the caller.
            while table.is_empty() && !writers_done.load(Ordering::Acquire) {
                std::hint::spin_loop();
            }
            let snap = table.snapshot();
            let first = digest(&snap);
            (snap, first)
        });
        let mut workers = Vec::with_capacity(threads);
        for t in 0..threads {
            workers.push(scope.spawn(move || {
                let inputs = thread_inputs(t);
                let mut engine = CountEngine::from_inputs(protocol, &inputs, t as u64 + 1);
                let _ = engine.run_until_silent(BUDGET);
                engine.export_to(table);
            }));
        }
        for w in workers {
            w.join().expect("writer thread");
        }
        writers_done.store(true, Ordering::Release);
        let (snap, first) = reader.join().expect("reader thread");
        assert_eq!(
            digest(&snap),
            first,
            "a snapshot captured mid-race changed under its reader"
        );
    });
}

/// Serially replays the same engine fleet and checks the racing table
/// against the serial union and the protocol itself.
fn check_union(
    protocol: &CirclesProtocol,
    racing: &TransitionTable<CirclesProtocol>,
    threads: usize,
) {
    let serial = TransitionTable::new();
    for t in 0..threads {
        let inputs = thread_inputs(t);
        let mut engine = CountEngine::from_inputs(protocol, &inputs, t as u64 + 1);
        let _ = engine.run_until_silent(BUDGET);
        engine.export_to(&serial);
    }
    let (raced, reference) = (racing.dump(), serial.dump());
    let mut raced_states = raced.states.clone();
    let mut serial_states = reference.states.clone();
    raced_states.sort_unstable();
    serial_states.sort_unstable();
    assert_eq!(
        raced_states, serial_states,
        "racing exports lost or invented states vs a serial replay"
    );
    for (i, si) in raced.states.iter().enumerate() {
        for (j, sj) in raced.states.iter().enumerate() {
            assert_eq!(
                raced.rows[i].binary_search(&(j as u32)).is_ok(),
                !protocol.is_null_interaction(si, sj),
                "pair ({si:?}, {sj:?}) misclassified after racing exports"
            );
        }
    }
    for &((i, j), (a, b)) in &raced.outcomes {
        let (ta, tb) = protocol.transition(&raced.states[i as usize], &raced.states[j as usize]);
        assert_eq!(
            (ta, tb),
            (raced.states[a as usize], raced.states[b as usize]),
            "memoized outcome ({i}, {j}) disagrees with the protocol"
        );
    }
    // Every segment reachable: the final snapshot must resolve the whole
    // id space round-trip.
    let snap = racing.snapshot();
    assert_eq!(snap.len(), racing.len());
    for t in 0..snap.len() as u32 {
        assert_eq!(
            snap.id_of(snap.state(t)),
            Some(t),
            "id {t} does not round-trip through the final snapshot"
        );
    }
}

/// Optional warm phase against the cached k = 30 store: concurrent epoch
/// captures plus racing warm trials that export back into the big table.
fn warm_phase(threads: usize, registry: &PhaseRegistry) {
    let Some(cache) = TableCache::from_env() else {
        return;
    };
    registry.mark("warm phase: loading cached k=30 store");
    let protocol = CirclesProtocol::new(30).expect("k = 30 is valid");
    let (table, status) = cache.load_or_empty(&protocol);
    if table.is_empty() {
        eprintln!("stress_racing_exports: no cached k=30 store ({status:?}); skipping warm phase");
        return;
    }
    println!(
        "warm phase: k=30 table loaded ({} states), racing {threads} warm trials",
        table.len()
    );
    registry.mark("warm phase: racing warm exports");
    let pre = table.snapshot();
    let before = digest(&pre);
    std::thread::scope(|scope| {
        for t in 0..threads {
            let table = &table;
            let protocol = &protocol;
            scope.spawn(move || {
                let inputs: Vec<_> = margin_workload(400, 30, 40)
                    .into_iter()
                    .map(|c| circles_core::Color((c.0 + t as u16) % 30))
                    .collect();
                let config: CountConfig<_> = inputs.iter().map(|i| protocol.input(i)).collect();
                let mut engine = CompactCountEngine::with_table_parts(
                    protocol,
                    config,
                    UniformCountScheduler::new(),
                    t as u64 + 1,
                    table,
                );
                let _ = engine.run_until_silent(BUDGET);
                engine.export_to(table);
            });
        }
    });
    // The pre-race snapshot still digests identically: warm exports only
    // appended, they never touched published segments.
    assert_eq!(
        digest(&pre),
        before,
        "the warm table's pre-race snapshot changed under racing exports"
    );
    println!(
        "warm phase: ok ({} states after racing exports)",
        table.len()
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let threads = flag(&args, "--threads", 32);
    let rounds = flag(&args, "--rounds", 4);
    let watchdog_secs = flag(&args, "--watchdog-secs", 300);
    let registry = Arc::new(PhaseRegistry::default());
    let finished = (watchdog_secs > 0)
        .then(|| start_watchdog(Duration::from_secs(watchdog_secs as u64), &registry));
    let protocol = CirclesProtocol::new(K_COLD).expect("k is valid");
    for round in 0..rounds {
        let table = TransitionTable::new();
        registry.mark(format!("round {}/{rounds}: racing cold engines", round + 1));
        race_cold(&protocol, &table, threads);
        registry.mark(format!(
            "round {}/{rounds}: checking union vs serial replay",
            round + 1
        ));
        check_union(&protocol, &table, threads);
        println!(
            "round {}/{rounds}: ok ({} states, {} outcomes, {threads} threads)",
            round + 1,
            table.len(),
            table.outcome_count(),
        );
    }
    warm_phase(threads, &registry);
    if let Some(finished) = finished {
        finished.store(true, Ordering::Release);
    }
    ExitCode::SUCCESS
}
