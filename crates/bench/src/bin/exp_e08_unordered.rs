//! Regenerates experiment E8 (`unordered`); see DESIGN.md §7.

use pp_analysis::experiments::e08_unordered::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e08_unordered");
}
