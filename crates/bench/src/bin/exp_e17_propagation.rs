//! Regenerates experiment E17 (`propagation`); see DESIGN.md §7.

use pp_analysis::experiments::e17_propagation::{run_with_figures, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e17_propagation", &figures);
}
