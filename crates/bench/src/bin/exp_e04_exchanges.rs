//! Regenerates experiment E4 (`exchanges`); see DESIGN.md §7.

use pp_analysis::experiments::e04_exchanges::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e04_exchanges");
}
