//! Regenerates experiment E9 (`verification`); see DESIGN.md §7.

use pp_analysis::experiments::e09_verification::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e09_verification");
}
