//! Regenerates experiment E14 (`energy`); see DESIGN.md §7.

use pp_analysis::experiments::e14_energy::{run_with_figures, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e14_energy", &figures);
}
