//! Crash/resume driver for the checkpointed `n = 10^9` hazard run — the
//! CI kill/resume gate's workhorse.
//!
//! ```text
//! checkpointed_run reference --report R [--n N] [--k K] [--seed S]
//! checkpointed_run run       --checkpoint C --report R [--every E]
//!                            [--kill-after M] [--stall-ms MS] [--n ..]
//! checkpointed_run resume    --checkpoint C --report R [--every E] [--n ..]
//! ```
//!
//! All three modes execute the same near-unanimous Circles workload (the
//! winner holds all but one agent per loser color — the regime where a
//! `10^9`-agent run is CI-affordable, see the `hazards` bench) under the
//! same 8-event crash/corrupt/churn schedule:
//!
//! - `reference` runs uninterrupted with checkpointing disabled and writes
//!   a timing-free report.
//! - `run` checkpoints to `--checkpoint` every `--every` state changes
//!   (atomic `.pprc` writes). `--kill-after M` aborts the process — no
//!   destructors, a genuine crash — right after the `M`-th checkpoint
//!   lands; `--stall-ms` sleeps inside each checkpoint offer, widening the
//!   window for an external `kill -9`.
//! - `resume` loads the latest checkpoint (engine state, schedule tail,
//!   quarantine ledger, both RNG positions), continues the run, and writes
//!   the same report.
//!
//! The gate: the `resume` report after a killed `run` must be **byte
//! identical** to the `reference` report. When `PP_TABLE_CACHE` holds the
//! k = 30 store, all modes warm-load it (warm and cold trajectories are
//! bit-identical by the canonical-slot contract, so mixing is harmless —
//! the cache only moves the discovery bill).
//!
//! Exit status: 0 on success, 1 on runtime failure (typed checkpoint/run
//! errors), 2 on a usage error; `--kill-after` dies by `SIGABRT`.

use std::fmt::Write as _;
use std::hash::{DefaultHasher, Hash, Hasher};
use std::ops::ControlFlow;
use std::path::PathBuf;
use std::time::Duration;

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_analysis::table_cache::TableCache;
use pp_extensions::hazard_checkpoint::{
    decode_hazard_aux, run_with_hazards_checkpointed, HazardProgress, HAZARD_AUX_SECTION,
};
use pp_extensions::hazards::{Hazard, HazardKind, HazardOutcome, HazardPlan};
use pp_protocol::{
    run_checkpoint, Activity, CompactCountEngine, CountConfig, CountEngine, RunCheckpoint,
    SparseActivity, UniformCountScheduler,
};
use rand::rngs::Philox4x32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Reference,
    Run,
    Resume,
}

#[derive(Debug)]
struct Opts {
    mode: Mode,
    n: u64,
    k: u16,
    seed: u64,
    every: u64,
    checkpoint: Option<PathBuf>,
    report: Option<PathBuf>,
    kill_after: Option<u64>,
    stall_ms: u64,
}

fn usage() -> ! {
    eprintln!(
        "usage: checkpointed_run <reference|run|resume> --report FILE \
         [--checkpoint FILE] [--n N] [--k K] [--seed S] [--every CHANGES] \
         [--kill-after CHECKPOINTS] [--stall-ms MS]"
    );
    std::process::exit(2);
}

fn arg_error(flag: &str, value: &str, reason: impl std::fmt::Display) -> ! {
    eprintln!("error: invalid argument {flag}={value}: {reason}");
    std::process::exit(2);
}

fn parse_args() -> Opts {
    let mut args = std::env::args().skip(1);
    let mode = match args.next().as_deref() {
        Some("reference") => Mode::Reference,
        Some("run") => Mode::Run,
        Some("resume") => Mode::Resume,
        _ => usage(),
    };
    let mut opts = Opts {
        mode,
        n: 1_000_000_000,
        k: 30,
        seed: 0,
        every: 64,
        checkpoint: None,
        report: None,
        kill_after: None,
        stall_ms: 0,
    };
    while let Some(flag) = args.next() {
        let value = args.next().unwrap_or_else(|| usage());
        let number = |flag: &str, value: &str| -> u64 {
            value.parse().unwrap_or_else(|e| arg_error(flag, value, e))
        };
        match flag.as_str() {
            "--n" => opts.n = number("--n", &value),
            "--k" => {
                opts.k = match number("--k", &value).try_into() {
                    Ok(k) if k >= 2 => k,
                    _ => arg_error("--k", &value, "color count must be in 2..=65535"),
                }
            }
            "--seed" => opts.seed = number("--seed", &value),
            "--every" => opts.every = number("--every", &value).max(1),
            "--kill-after" => opts.kill_after = Some(number("--kill-after", &value).max(1)),
            "--stall-ms" => opts.stall_ms = number("--stall-ms", &value),
            "--checkpoint" => opts.checkpoint = Some(PathBuf::from(&value)),
            "--report" => opts.report = Some(PathBuf::from(&value)),
            _ => usage(),
        }
    }
    if opts.report.is_none() {
        usage();
    }
    if opts.mode != Mode::Reference && opts.checkpoint.is_none() {
        usage();
    }
    opts
}

/// The CI hazard schedule — identical to the `hazards` bench's: eight
/// events over the first `8n` interactions covering crash, corruption and
/// both churn directions.
fn schedule(n: u64) -> HazardPlan {
    let mut plan = HazardPlan::new();
    for i in 0..8u64 {
        plan.push(Hazard {
            at_step: (i + 1) * n,
            kind: match i % 4 {
                0 => HazardKind::Crash,
                1 => HazardKind::Corrupt,
                2 => HazardKind::Arrive,
                _ => HazardKind::Depart,
            },
        });
    }
    plan
}

/// Near-unanimous color counts: the winner holds all but one agent per
/// loser color.
fn color_counts(n: u64, k: u16) -> Vec<(Color, u64)> {
    let losers = u64::from(k) - 1;
    let mut counts = vec![(Color(0), n - losers)];
    counts.extend((1..k).map(|c| (Color(c), 1)));
    counts
}

fn config_from(counts: &[(Color, u64)]) -> CountConfig<CirclesState> {
    let mut config = CountConfig::new();
    for &(color, count) in counts {
        config.insert(
            CirclesState::initial(color),
            count.try_into().expect("count fits a usize"),
        );
    }
    config
}

/// Shared run loop: drive the checkpointed hazard campaign over whichever
/// engine/activity the cache situation produced, persisting checkpoints and
/// honoring the crash-injection knobs.
fn drive<A: Activity>(
    engine: &mut CountEngine<'_, CirclesProtocol, UniformCountScheduler, A, Philox4x32>,
    progress: HazardProgress<CirclesState>,
    pool: &[(Color, u64)],
    hazard_rng: &mut Philox4x32,
    opts: &Opts,
) -> HazardOutcome<CirclesProtocol> {
    let every = if opts.mode == Mode::Reference {
        0 // checkpointing disabled: the uninterrupted reference trajectory
    } else {
        opts.every
    };
    let mut saved = 0u64;
    let outcome = run_with_hazards_checkpointed(
        engine,
        progress,
        pool,
        hazard_rng,
        u64::MAX / 2,
        every,
        |ck| {
            if let Some(path) = &opts.checkpoint {
                if let Err(e) = run_checkpoint::save(ck, path) {
                    eprintln!("error: cannot write checkpoint {}: {e}", path.display());
                    std::process::exit(1);
                }
                saved += 1;
            }
            if opts.stall_ms > 0 {
                std::thread::sleep(Duration::from_millis(opts.stall_ms));
            }
            if opts.kill_after.is_some_and(|m| saved >= m) {
                eprintln!("checkpointed_run: simulated crash after {saved} checkpoint(s)");
                std::process::abort();
            }
            ControlFlow::Continue(())
        },
    );
    match outcome {
        Ok(outcome) => {
            eprintln!(
                "checkpointed_run: completed ({} checkpoint(s) written)",
                saved
            );
            outcome
        }
        Err(e) => {
            eprintln!("error: hazard run failed: {e}");
            std::process::exit(1);
        }
    }
}

/// Order-independent digest of the final configuration, so reports can be
/// byte-diffed without embedding thousands of state lines. `DefaultHasher`
/// is deterministic across processes.
fn config_digest(config: &CountConfig<CirclesState>) -> u64 {
    let mut h = DefaultHasher::new();
    for (state, count) in config.iter() {
        state.to_string().hash(&mut h);
        count.hash(&mut h);
    }
    h.finish()
}

/// The timing-free report both sides of the byte-diff write.
fn render_report(outcome: &HazardOutcome<CirclesProtocol>, opts: &Opts) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "protocol=circles k={} n={} seed={}",
        opts.k, opts.n, opts.seed
    );
    let _ = writeln!(s, "stabilized={}", outcome.stabilized);
    let _ = writeln!(s, "applied={}", outcome.applied);
    let _ = writeln!(s, "last_hazard_step={}", outcome.last_hazard_step);
    let _ = writeln!(s, "recovery_steps={}", outcome.recovery_steps);
    let _ = writeln!(s, "recovery_changes={}", outcome.recovery_changes);
    let _ = writeln!(s, "final_n={}", outcome.final_n);
    let _ = writeln!(s, "quarantined={}", outcome.quarantined.n());
    let _ = writeln!(s, "steps={}", outcome.report.steps);
    let _ = writeln!(s, "steps_to_silence={}", outcome.report.steps_to_silence);
    let _ = writeln!(
        s,
        "steps_to_consensus={}",
        outcome.report.steps_to_consensus
    );
    let _ = writeln!(s, "state_changes={}", outcome.report.state_changes);
    let _ = writeln!(s, "consensus={:?}", outcome.report.consensus);
    let _ = writeln!(s, "final_distinct={}", outcome.final_config.distinct());
    let _ = writeln!(
        s,
        "final_config_digest={:016x}",
        config_digest(&outcome.final_config)
    );
    s
}

fn main() {
    let opts = parse_args();
    let protocol =
        CirclesProtocol::new(opts.k).unwrap_or_else(|e| arg_error("--k", &opts.k.to_string(), e));
    let counts = color_counts(opts.n, opts.k);
    let table = TableCache::from_env()
        .map(|cache| cache.load_or_empty(&protocol).0)
        .filter(|table| !table.is_empty());

    let outcome = match opts.mode {
        Mode::Reference | Mode::Run => {
            let progress = HazardProgress::fresh(schedule(opts.n));
            let trial_rng = Philox4x32::stream(0, opts.seed);
            let mut hazard_rng = Philox4x32::stream(0, opts.seed | 1 << 63);
            match &table {
                Some(table) => {
                    let mut engine = CompactCountEngine::<_, _, Philox4x32>::with_table_rng(
                        &protocol,
                        config_from(&counts),
                        UniformCountScheduler::new(),
                        trial_rng,
                        table,
                    );
                    drive(&mut engine, progress, &counts, &mut hazard_rng, &opts)
                }
                None => {
                    let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
                        &protocol,
                        config_from(&counts),
                        UniformCountScheduler::new(),
                        trial_rng,
                    );
                    drive(&mut engine, progress, &counts, &mut hazard_rng, &opts)
                }
            }
        }
        Mode::Resume => {
            let path = opts.checkpoint.as_ref().expect("checked in parse_args");
            let ck: RunCheckpoint<CirclesState> = run_checkpoint::load(&protocol, path)
                .unwrap_or_else(|e| {
                    eprintln!("error: cannot load checkpoint {}: {e}", path.display());
                    std::process::exit(1);
                });
            let aux = ck.aux(HAZARD_AUX_SECTION).unwrap_or_else(|| {
                eprintln!(
                    "error: checkpoint {} has no {HAZARD_AUX_SECTION} section \
                     (not a hazard-run checkpoint)",
                    path.display()
                );
                std::process::exit(1);
            });
            let (progress, mut hazard_rng): (HazardProgress<CirclesState>, Philox4x32) =
                decode_hazard_aux(aux).unwrap_or_else(|e| {
                    eprintln!("error: cannot decode hazard state: {e}");
                    std::process::exit(1);
                });
            eprintln!(
                "checkpointed_run: resuming at step {} ({} hazards applied, {} pending)",
                ck.stats.steps,
                progress.applied,
                progress.pending.len()
            );
            match &table {
                Some(table) => {
                    let mut engine = CompactCountEngine::<_, _, Philox4x32>::resume_with_snapshot(
                        &protocol,
                        UniformCountScheduler::new(),
                        &ck,
                        table.snapshot(),
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("error: cannot resume engine: {e}");
                        std::process::exit(1);
                    });
                    drive(&mut engine, progress, &counts, &mut hazard_rng, &opts)
                }
                None => {
                    let mut engine = CountEngine::<_, _, SparseActivity, Philox4x32>::resume(
                        &protocol,
                        UniformCountScheduler::new(),
                        &ck,
                    )
                    .unwrap_or_else(|e| {
                        eprintln!("error: cannot resume engine: {e}");
                        std::process::exit(1);
                    });
                    drive(&mut engine, progress, &counts, &mut hazard_rng, &opts)
                }
            }
        }
    };

    let report = render_report(&outcome, &opts);
    let path = opts.report.as_ref().expect("checked in parse_args");
    if let Err(e) = std::fs::write(path, &report) {
        eprintln!("error: cannot write report {}: {e}", path.display());
        std::process::exit(1);
    }
    print!("{report}");
}
