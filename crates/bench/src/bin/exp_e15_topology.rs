//! Regenerates experiment E15 (`topology`); see DESIGN.md §7.

use pp_analysis::experiments::e15_topology::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e15_topology");
}
