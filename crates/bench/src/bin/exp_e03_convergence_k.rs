//! Regenerates experiment E3 (`convergence_k`); see DESIGN.md §7.

use pp_analysis::experiments::e03_convergence_k::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e03_convergence_k");
}
