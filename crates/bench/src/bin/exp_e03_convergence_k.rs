//! Regenerates experiment E3 (`convergence_k`); see DESIGN.md §7.
//!
//! The sweep can be resized without recompiling: `PP_E03_N`,
//! `PP_E03_SEEDS`, `PP_E03_MAX_STEPS`, `PP_E03_THREADS` and `PP_E03_KS`
//! (a comma-separated color-count list) override the corresponding
//! parameters in both quick and full mode, e.g.
//!
//! ```sh
//! PP_E03_KS=40,50 PP_E03_SEEDS=8 exp_e03_convergence_k --quick
//! ```
//!
//! The default full grid tops out at `k = 50`, where per-seed discovery
//! runs through the color-orbit quotient (see `docs/architecture.md`).

use pp_analysis::experiments::e03_convergence_k::{run, Params};

/// A comma-separated list of color counts, e.g. `2,8,50`.
struct KList(Vec<u16>);

impl std::str::FromStr for KList {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let ks = s
            .split(',')
            .map(|part| match part.trim().parse::<u16>() {
                Ok(k) if k >= 2 => Ok(k),
                Ok(k) => Err(format!("color count {k} must be in 2..=65535")),
                Err(_) => Err(format!("{part:?} is not a color count")),
            })
            .collect::<Result<Vec<u16>, String>>()?;
        if ks.is_empty() {
            return Err("the k list is empty".into());
        }
        Ok(KList(ks))
    }
}

fn main() {
    let mut params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    // Invalid overrides are a hard exit(2) with a structured one-line
    // error naming the variable — never a silent fallback, never a panic.
    if let Some(n) = pp_bench::env_override::<usize>("PP_E03_N") {
        if n == 0 {
            pp_bench::env_override_fail("PP_E03_N", "0", "population must be at least 1");
        }
        params.n = n;
    }
    if let Some(seeds) = pp_bench::env_override::<u64>("PP_E03_SEEDS") {
        if seeds == 0 {
            pp_bench::env_override_fail("PP_E03_SEEDS", "0", "need at least one seed");
        }
        params.seeds = seeds;
    }
    if let Some(max_steps) = pp_bench::env_override::<u64>("PP_E03_MAX_STEPS") {
        params.max_steps = max_steps;
    }
    if let Some(threads) = pp_bench::env_override::<usize>("PP_E03_THREADS") {
        if threads == 0 {
            pp_bench::env_override_fail("PP_E03_THREADS", "0", "need at least one thread");
        }
        params.threads = threads;
    }
    if let Some(KList(ks)) = pp_bench::env_override::<KList>("PP_E03_KS") {
        params.ks = ks;
    }
    let table = run(&params);
    pp_bench::emit(&table, "e03_convergence_k");
}
