//! Regenerates experiment E11 (`faults`); see DESIGN.md §7.
//!
//! The large-`n` count-hazard section can be resized without recompiling:
//! `PP_E11_HAZARD_N`, `PP_E11_HAZARD_K` and `PP_E11_HAZARD_SEEDS` override
//! the population, color count and seed count of that section (in both
//! quick and full mode), e.g.
//!
//! ```sh
//! PP_E11_HAZARD_N=1000000000 PP_E11_HAZARD_K=30 exp_e11_faults --quick
//! ```

use pp_analysis::experiments::e11_faults::{run, Params};

fn env_u64(name: &str) -> Option<u64> {
    let raw = std::env::var(name).ok()?;
    match raw.parse() {
        Ok(v) => Some(v),
        Err(e) => {
            eprintln!("ignoring {name}={raw}: {e}");
            None
        }
    }
}

fn main() {
    let mut params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    if let Some(n) = env_u64("PP_E11_HAZARD_N") {
        params.hazard_n = n;
    }
    if let Some(k) = env_u64("PP_E11_HAZARD_K") {
        params.hazard_k = k.try_into().expect("PP_E11_HAZARD_K out of range");
    }
    if let Some(seeds) = env_u64("PP_E11_HAZARD_SEEDS") {
        params.hazard_seeds = seeds;
    }
    let table = run(&params);
    pp_bench::emit(&table, "e11_faults");
}
