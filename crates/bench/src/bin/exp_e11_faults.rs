//! Regenerates experiment E11 (`faults`); see DESIGN.md §7.
//!
//! The large-`n` count-hazard section can be resized without recompiling:
//! `PP_E11_HAZARD_N`, `PP_E11_HAZARD_K` and `PP_E11_HAZARD_SEEDS` override
//! the population, color count and seed count of that section (in both
//! quick and full mode), e.g.
//!
//! ```sh
//! PP_E11_HAZARD_N=1000000000 PP_E11_HAZARD_K=30 exp_e11_faults --quick
//! ```

use pp_analysis::experiments::e11_faults::{run, Params};

fn main() {
    let mut params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    // Invalid overrides are a hard exit(2) with a structured one-line
    // error naming the variable — never a silent fallback, never a panic.
    if let Some(n) = pp_bench::env_override::<u64>("PP_E11_HAZARD_N") {
        if n == 0 {
            pp_bench::env_override_fail("PP_E11_HAZARD_N", "0", "population must be at least 1");
        }
        params.hazard_n = n;
    }
    if let Some(k) = pp_bench::env_override::<u64>("PP_E11_HAZARD_K") {
        params.hazard_k = match k.try_into() {
            Ok(k) if k >= 2 => k,
            _ => pp_bench::env_override_fail(
                "PP_E11_HAZARD_K",
                &k.to_string(),
                "color count must be in 2..=65535",
            ),
        };
    }
    if let Some(seeds) = pp_bench::env_override::<u64>("PP_E11_HAZARD_SEEDS") {
        params.hazard_seeds = seeds;
    }
    let table = run(&params);
    pp_bench::emit(&table, "e11_faults");
}
