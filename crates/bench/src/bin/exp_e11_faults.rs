//! Regenerates experiment E11 (`faults`); see DESIGN.md §7.

use pp_analysis::experiments::e11_faults::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e11_faults");
}
