//! Regenerates experiment E7 (`ties`); see DESIGN.md §7.

use pp_analysis::experiments::e07_ties::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e07_ties");
}
