//! Regenerates experiment E13 (`meanfield`); see DESIGN.md §7.
//!
//! `PP_E13_SAMPLER=count` switches to the count-engine sampler at the
//! large-`n` preset (`n` up to `10^8`), the populations the SSA event loop
//! cannot reach; default is the Gillespie reference sweep.

use pp_analysis::experiments::e13_meanfield::{run_with_figures, Params};

fn main() {
    let count_sampler = std::env::var("PP_E13_SAMPLER").is_ok_and(|v| v == "count");
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else if count_sampler {
        Params::count_large()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e13_meanfield", &figures);
}
