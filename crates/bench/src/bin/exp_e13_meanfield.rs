//! Regenerates experiment E13 (`meanfield`); see DESIGN.md §7.
//!
//! `PP_E13_SAMPLER=count` switches to the count-engine sampler at the
//! large-`n` preset (`n` up to `10^8`), the populations the SSA event loop
//! cannot reach; `PP_E13_SAMPLER=gillespie` (or unset) is the Gillespie
//! reference sweep. Any other value exits with a structured error.

use pp_analysis::experiments::e13_meanfield::{run_with_figures, Params};

fn main() {
    let count_sampler = match pp_bench::env_override::<String>("PP_E13_SAMPLER").as_deref() {
        None | Some("gillespie") => false,
        Some("count") => true,
        Some(other) => {
            pp_bench::env_override_fail("PP_E13_SAMPLER", other, "expected `count` or `gillespie`")
        }
    };
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else if count_sampler {
        Params::count_large()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e13_meanfield", &figures);
}
