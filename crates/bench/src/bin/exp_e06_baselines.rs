//! Regenerates experiment E6 (`baselines`); see DESIGN.md §7.

use pp_analysis::experiments::e06_baselines::{run, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let table = run(&params);
    pp_bench::emit(&table, "e06_baselines");
}
