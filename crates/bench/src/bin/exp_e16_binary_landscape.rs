//! Regenerates experiment E16 (`binary_landscape`); see DESIGN.md §7.

use pp_analysis::experiments::e16_binary_landscape::{run_with_figures, Params};

fn main() {
    let params = if pp_bench::quick_requested() {
        Params::quick()
    } else {
        Params::default()
    };
    let (table, figures) = run_with_figures(&params);
    pp_bench::emit_with_figures(&table, "e16_binary_landscape", &figures);
}
