//! Shared plumbing for the experiment binaries.
//!
//! Each `exp_e*` binary regenerates one table of the experiment suite
//! (DESIGN.md §7) and writes it under `results/` as Markdown + CSV;
//! figure-shaped experiments also render SVG charts next to their tables.
//! All binaries accept `--quick` to run the CI-scale preset instead of the
//! full parameters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::Path;

use pp_analysis::plot::LinePlot;
use pp_analysis::Table;

/// Whether the CI-scale preset was requested: `--quick` on the command line
/// or `PP_EXP_QUICK` set to anything but `0` in the environment. The env
/// knob lets CI run experiment binaries end-to-end (through `cargo run`,
/// where extra arguments are awkward to thread) with reduced parameters.
pub fn quick_requested() -> bool {
    std::env::args().any(|a| a == "--quick")
        || std::env::var("PP_EXP_QUICK").is_ok_and(|v| v != "0")
}

/// Reads the `PP_*` override `name` as a `T`. Unset is `None`; a set but
/// unparsable value is a hard, structured failure via
/// [`env_override_fail`] — an experiment or bench must never start a long
/// run having silently ignored a typo'd override, and must never panic with
/// a backtrace over one either.
pub fn env_override<T>(name: &str) -> Option<T>
where
    T: std::str::FromStr,
    T::Err: std::fmt::Display,
{
    let raw = std::env::var_os(name)?;
    let Some(text) = raw.to_str() else {
        env_override_fail(name, &raw.to_string_lossy(), "value is not valid UTF-8");
    };
    match text.parse() {
        Ok(value) => Some(value),
        Err(e) => env_override_fail(name, text, e),
    }
}

/// Reports an invalid `PP_*` environment override as one structured line on
/// stderr — `error: invalid environment override NAME=VALUE: reason` — and
/// exits with status 2 (the experiment binaries' contract for bad
/// overrides; distinct from 1, a runtime failure).
pub fn env_override_fail(name: &str, value: &str, reason: impl std::fmt::Display) -> ! {
    eprintln!("error: invalid environment override {name}={value}: {reason}");
    std::process::exit(2);
}

/// Prints the table and writes `results/<basename>.{md,csv}` relative to
/// the workspace root (or the current directory when run elsewhere).
///
/// # Panics
///
/// Panics when the results directory is not writable — an experiment whose
/// output vanishes silently is worse than a crash.
pub fn emit(table: &Table, basename: &str) {
    print!("{}", table.to_markdown());
    let dir = results_dir();
    table
        .write_files(&dir, basename)
        .unwrap_or_else(|e| panic!("cannot write results to {}: {e}", dir.display()));
    eprintln!("wrote {}/{basename}.md and .csv", dir.display());
}

/// Renders a figure to `results/<basename>.svg`.
///
/// # Panics
///
/// Panics when the results directory is not writable, matching [`emit`].
pub fn emit_figure(plot: &LinePlot, basename: &str) {
    let dir = results_dir();
    let path = dir.join(format!("{basename}.svg"));
    plot.write(&path)
        .unwrap_or_else(|e| panic!("cannot write figure to {}: {e}", path.display()));
    eprintln!("wrote {}", path.display());
}

/// Emits a table plus its companion figures.
pub fn emit_with_figures(table: &Table, basename: &str, figures: &[(String, LinePlot)]) {
    emit(table, basename);
    for (name, plot) in figures {
        emit_figure(plot, name);
    }
}

/// `results/` next to the workspace `Cargo.toml` when discoverable, else
/// relative to the current directory.
pub fn results_dir() -> std::path::PathBuf {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    // crates/bench -> workspace root.
    manifest
        .ancestors()
        .nth(2)
        .map(|root| root.join("results"))
        .unwrap_or_else(|| Path::new("results").to_path_buf())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_dir_ends_with_results() {
        assert!(results_dir().ends_with("results"));
    }
}
