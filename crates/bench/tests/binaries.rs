//! Black-box tests of the experiment binaries' operational contracts:
//! invalid `PP_*` environment overrides fail fast with a structured error
//! naming the variable, and `checkpointed_run`'s kill → resume cycle
//! reproduces the uninterrupted run byte-for-byte.

use std::path::PathBuf;
use std::process::Command;

fn unique_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("pp-bench-it-{tag}-{}", std::process::id()))
}

/// Spawn `bin` with one `PP_*` override set and assert the structured
/// usage-error contract: exit code 2 and a one-line `error:` diagnostic
/// naming the variable and the rejected value.
fn assert_env_rejected(bin: &str, name: &str, value: &str) {
    let out = Command::new(bin)
        .env_remove("PP_TABLE_CACHE")
        .env(name, value)
        .output()
        .expect("binary spawns");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{name}={value} must exit 2, got {:?} (stderr: {stderr})",
        out.status
    );
    assert!(
        stderr.contains("error: invalid environment override") && stderr.contains(name),
        "diagnostic must name {name}, got: {stderr}"
    );
    assert!(
        stderr.contains(value),
        "diagnostic must echo the rejected value {value:?}, got: {stderr}"
    );
}

#[test]
fn invalid_env_overrides_exit_nonzero_with_the_variable_named() {
    let e11 = env!("CARGO_BIN_EXE_exp_e11_faults");
    assert_env_rejected(e11, "PP_E11_HAZARD_N", "a-billion");
    assert_env_rejected(e11, "PP_E11_HAZARD_N", "0");
    assert_env_rejected(e11, "PP_E11_HAZARD_K", "1");
    assert_env_rejected(e11, "PP_E11_HAZARD_SEEDS", "-3");
    assert_env_rejected(
        env!("CARGO_BIN_EXE_exp_e13_meanfield"),
        "PP_E13_SAMPLER",
        "exact",
    );
    let e03 = env!("CARGO_BIN_EXE_exp_e03_convergence_k");
    assert_env_rejected(e03, "PP_E03_N", "0");
    assert_env_rejected(e03, "PP_E03_SEEDS", "lots");
    assert_env_rejected(e03, "PP_E03_KS", "8,1,30");
    assert_env_rejected(e03, "PP_E03_KS", "8,,30");
    assert_env_rejected(e03, "PP_E03_THREADS", "0");
}

#[test]
fn checkpointed_run_killed_mid_run_resumes_to_the_reference_report() {
    let bin = env!("CARGO_BIN_EXE_checkpointed_run");
    let dir = unique_dir("killresume");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let reference = dir.join("reference.txt");
    let resumed = dir.join("resumed.txt");
    let checkpoint = dir.join("run.pprc");
    // Small-population variant of the CI gate: same driver, same hazard
    // schedule shape, minutes become milliseconds. `--every 1` offers a
    // checkpoint at every state change so `--kill-after 5` dies mid-run.
    let common = ["--n", "100000", "--k", "4", "--seed", "1", "--every", "1"];

    let status = Command::new(bin)
        .env_remove("PP_TABLE_CACHE")
        .arg("reference")
        .args(common)
        .args(["--report", reference.to_str().unwrap()])
        .status()
        .expect("reference run spawns");
    assert!(status.success(), "reference run must succeed: {status:?}");

    let killed = Command::new(bin)
        .env_remove("PP_TABLE_CACHE")
        .arg("run")
        .args(common)
        .args(["--checkpoint", checkpoint.to_str().unwrap()])
        .args(["--report", dir.join("unused.txt").to_str().unwrap()])
        .args(["--kill-after", "5"])
        .output()
        .expect("killed run spawns");
    assert!(
        !killed.status.success(),
        "--kill-after must crash the run, got {:?}",
        killed.status
    );
    assert!(
        checkpoint.exists(),
        "the crash must leave a checkpoint behind"
    );

    let status = Command::new(bin)
        .env_remove("PP_TABLE_CACHE")
        .arg("resume")
        .args(common)
        .args(["--checkpoint", checkpoint.to_str().unwrap()])
        .args(["--report", resumed.to_str().unwrap()])
        .status()
        .expect("resume run spawns");
    assert!(status.success(), "resume must succeed: {status:?}");

    let want = std::fs::read(&reference).unwrap();
    let got = std::fs::read(&resumed).unwrap();
    assert_eq!(
        want, got,
        "the resumed report must be byte-identical to the uninterrupted reference"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
