//! Generic verification properties over reachability graphs.

use pp_protocol::Protocol;

use crate::explore::{ConfigId, ReachabilityGraph};
use crate::scc::{tarjan, SccDecomposition};

/// Result of the stable-computation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StableComputationReport<O> {
    /// Whether the protocol stably computes `expected` from the explored
    /// initial configuration under global fairness.
    pub holds: bool,
    /// Number of bottom SCCs examined.
    pub bottom_scc_count: usize,
    /// A counterexample: a configuration inside a bottom SCC whose outputs
    /// are not unanimously `expected`.
    pub counterexample: Option<(ConfigId, Vec<O>)>,
}

/// The classical global-fairness criterion for *stable computation*: from
/// the explored initial configuration, every globally fair execution
/// eventually reaches a bottom SCC of the configuration graph and visits all
/// of its configurations infinitely often. The protocol stably computes
/// `expected` iff **every configuration of every bottom SCC outputs
/// `expected` unanimously**.
///
/// For protocols where two agents can swap states without changing the
/// multiset, a bottom SCC that is a single silent-looking configuration with
/// an internal swap still never lets outputs change (the multiset is
/// invariant), so the criterion remains sound on anonymous graphs.
pub fn check_stable_computation<P>(
    graph: &ReachabilityGraph<P::State>,
    protocol: &P,
    expected: &P::Output,
) -> StableComputationReport<P::Output>
where
    P: Protocol,
{
    let scc = tarjan(graph.adjacency());
    let bottoms = scc.bottom_sccs(graph.adjacency());
    for &b in &bottoms {
        for &cid in &scc.members[b as usize] {
            let config = graph.config(cid);
            let outputs: Vec<P::Output> = config.iter().map(|(s, _)| protocol.output(s)).collect();
            if outputs.iter().any(|o| o != expected) {
                return StableComputationReport {
                    holds: false,
                    bottom_scc_count: bottoms.len(),
                    counterexample: Some((cid, outputs)),
                };
            }
        }
    }
    StableComputationReport {
        holds: true,
        bottom_scc_count: bottoms.len(),
        counterexample: None,
    }
}

/// Whether every execution terminates in a silent configuration under
/// global fairness: every bottom SCC is a single silent configuration
/// (no internal swap either).
pub fn is_eventually_silent<S>(graph: &ReachabilityGraph<S>) -> bool
where
    S: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug,
{
    let scc = tarjan(graph.adjacency());
    let bottoms = scc.bottom_sccs(graph.adjacency());
    bottoms.iter().all(|&b| {
        let members = &scc.members[b as usize];
        members.len() == 1
            && graph.successors(members[0]).is_empty()
            && !graph.has_internal_swap(members[0])
    })
}

/// Whether the changing-edge graph is acyclic *and* free of internal swaps:
/// then **every** execution — fair or not — performs only finitely many
/// state changes (the strongest stabilization statement; Circles' bra-ket
/// dynamics satisfy it, Theorem 3.4).
pub fn changes_always_terminate<S>(graph: &ReachabilityGraph<S>) -> bool
where
    S: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug,
{
    if (0..graph.len() as ConfigId).any(|id| graph.has_internal_swap(id)) {
        return false;
    }
    let scc = tarjan(graph.adjacency());
    scc.is_dag(graph.adjacency())
}

/// The SCC decomposition of a graph's changing edges (re-exported
/// convenience).
pub fn scc_of<S>(graph: &ReachabilityGraph<S>) -> SccDecomposition {
    tarjan(graph.adjacency())
}

/// Generalized global-fairness check: `predicate` must hold on **every
/// configuration of every bottom SCC**. This is the right tool when
/// "correct" is not expressible as a unanimous output value — e.g. the
/// unordered-setting composition, where winners and losers legitimately
/// report different `own_color_wins` flags.
///
/// Returns the first violating configuration id, or `None` when the
/// property holds.
pub fn bscc_counterexample<S, F>(graph: &ReachabilityGraph<S>, mut predicate: F) -> Option<ConfigId>
where
    S: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug,
    F: FnMut(&pp_protocol::CountConfig<S>) -> bool,
{
    let scc = tarjan(graph.adjacency());
    for &b in &scc.bottom_sccs(graph.adjacency()) {
        for &cid in &scc.members[b as usize] {
            if !predicate(&graph.config(cid)) {
                return Some(cid);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::ExploreLimits;
    use pp_protocol::CountConfig;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
    }

    /// Oscillator: both agents flip 0↔1 on every meeting — never silent.
    struct Flip;

    impl Protocol for Flip {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "flip"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            (1 - *a, 1 - *b)
        }
    }

    #[test]
    fn max_stably_computes_maximum() {
        let initial: CountConfig<u8> = [0u8, 1, 3].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        let report = check_stable_computation(&graph, &Max, &3);
        assert!(report.holds);
        assert_eq!(report.bottom_scc_count, 1);
        assert!(is_eventually_silent(&graph));
        assert!(changes_always_terminate(&graph));
    }

    #[test]
    fn max_does_not_compute_wrong_value() {
        let initial: CountConfig<u8> = [0u8, 1, 3].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        let report = check_stable_computation(&graph, &Max, &1);
        assert!(!report.holds);
        assert!(report.counterexample.is_some());
    }

    #[test]
    fn bscc_predicate_checks_bottoms_only() {
        let initial: CountConfig<u8> = [0u8, 1, 3].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        // Bottom = everyone at 3.
        assert_eq!(bscc_counterexample(&graph, |c| c.count(&3) == 3), None);
        // A predicate failing on the bottom is caught.
        assert!(bscc_counterexample(&graph, |c| c.count(&0) > 0).is_some());
    }

    #[test]
    fn oscillator_is_never_silent() {
        let initial: CountConfig<u8> = [0u8, 1].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Flip, &initial, ExploreLimits::default()).unwrap();
        assert!(!is_eventually_silent(&graph));
        assert!(!changes_always_terminate(&graph));
        let report = check_stable_computation(&graph, &Flip, &0);
        assert!(!report.holds);
    }
}
