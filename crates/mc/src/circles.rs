//! Composite, per-instance verification of the Circles protocol.
//!
//! [`verify_circles_instance`] checks the three exhaustive facts that —
//! together with the weak-fairness propagation argument — establish
//! Theorem 3.7 for a concrete input multiset (see the crate docs and
//! `DESIGN.md` §5). [`verify_circles_full`] cross-validates on the *full*
//! state space (outputs included) using the global-fairness BSCC criterion.

use std::error::Error;
use std::fmt;

use circles_core::prediction::{predicted_brakets_of, self_loop_colors};
use circles_core::{
    would_exchange, BraKet, CirclesError, CirclesProtocol, Color, GreedyDecomposition,
};
use pp_protocol::{CountConfig, Protocol};

use crate::error::McError;
use crate::explore::{ExploreLimits, ReachabilityGraph};
use crate::properties::{changes_always_terminate, check_stable_computation, is_eventually_silent};

/// Errors from Circles verification: invalid instance or exploration limits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The input multiset or `k` was invalid.
    Circles(CirclesError),
    /// Exploration exceeded its limits.
    Mc(McError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Circles(e) => write!(f, "invalid circles instance: {e}"),
            VerifyError::Mc(e) => write!(f, "exploration failed: {e}"),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::Circles(e) => Some(e),
            VerifyError::Mc(e) => Some(e),
        }
    }
}

impl From<CirclesError> for VerifyError {
    fn from(e: CirclesError) -> Self {
        VerifyError::Circles(e)
    }
}

impl From<McError> for VerifyError {
    fn from(e: McError) -> Self {
        VerifyError::Mc(e)
    }
}

/// The bra-ket projection of Circles as a standalone protocol: states are
/// bra-kets, the transition is the ket-exchange rule alone. Sound because
/// the exchange rule never reads the `out` register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BraKetDynamics {
    k: u16,
}

impl BraKetDynamics {
    /// Creates the projected dynamics for `k` colors.
    ///
    /// # Errors
    ///
    /// Returns [`CirclesError::ZeroColors`] when `k == 0`.
    pub fn new(k: u16) -> Result<Self, CirclesError> {
        if k == 0 {
            return Err(CirclesError::ZeroColors);
        }
        Ok(BraKetDynamics { k })
    }

    /// The number of colors.
    pub fn k(&self) -> u16 {
        self.k
    }
}

impl Protocol for BraKetDynamics {
    type State = BraKet;
    type Input = Color;
    type Output = ();

    fn name(&self) -> &str {
        "circles-brakets"
    }

    /// # Panics
    ///
    /// Panics when `input >= k`.
    fn input(&self, input: &Color) -> BraKet {
        assert!(input.0 < self.k, "input color {input} out of range");
        BraKet::self_loop(*input)
    }

    fn output(&self, _state: &BraKet) {}

    fn transition(&self, initiator: &BraKet, responder: &BraKet) -> (BraKet, BraKet) {
        match would_exchange(self.k, *initiator, *responder) {
            Some(pair) => pair,
            None => (*initiator, *responder),
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

/// The outcome of the weak-fairness verification of one Circles instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CirclesVerification {
    /// Population size.
    pub n: usize,
    /// Number of colors.
    pub k: u16,
    /// The unique majority color, if any (`None` = tie).
    pub winner: Option<Color>,
    /// Reachable bra-ket configurations explored.
    pub config_count: usize,
    /// Fact 1: the exchange dynamics' changing-edge graph is a DAG (and has
    /// no multiset-invariant swaps) — every schedule stabilizes.
    pub exchange_dag: bool,
    /// Number of reachable exchange-stable configurations (must be 1).
    pub stable_config_count: usize,
    /// Fact 2: the unique exchange-stable configuration equals the
    /// Lemma 3.6 prediction `⋃ f(G_p)`.
    pub stable_matches_prediction: bool,
    /// Fact 3: self-loops in the terminal configuration are exactly the
    /// majority color (unique winner) or absent (tie).
    pub self_loops_correct: bool,
    /// Conjunction of the three facts: the instance is verified. With a
    /// unique winner this establishes Theorem 3.7 for every weakly fair
    /// schedule; with a tie it establishes that outputs stall (no self-loop
    /// survives to broadcast).
    pub verified: bool,
}

/// Exhaustively verifies one Circles instance under weak fairness (facts
/// 1–3 of the crate docs).
///
/// # Errors
///
/// Returns [`VerifyError::Circles`] for invalid instances and
/// [`VerifyError::Mc`] when the configuration space exceeds `limits`.
///
/// # Example
///
/// See the [crate-level example](crate).
pub fn verify_circles_instance(
    inputs: &[Color],
    k: u16,
    limits: ExploreLimits,
) -> Result<CirclesVerification, VerifyError> {
    let greedy = GreedyDecomposition::from_inputs(inputs, k)?;
    let dynamics = BraKetDynamics::new(k)?;
    let initial: CountConfig<BraKet> = inputs.iter().map(|c| BraKet::self_loop(*c)).collect();
    let graph = ReachabilityGraph::explore(&dynamics, &initial, limits)?;

    let exchange_dag = changes_always_terminate(&graph);
    let stable = graph.silent_configs();
    let predicted = predicted_brakets_of(&greedy);
    let stable_matches_prediction = stable.len() == 1 && graph.config(stable[0]) == predicted;

    let loops = self_loop_colors(&predicted);
    let winner = greedy.winner();
    let self_loops_correct = match winner {
        Some(mu) => loops.iter().all(|(c, _)| *c == mu) && !loops.is_empty(),
        None => loops.is_empty(),
    };

    let verified = exchange_dag && stable_matches_prediction && self_loops_correct;
    Ok(CirclesVerification {
        n: inputs.len(),
        k,
        winner,
        config_count: graph.len(),
        exchange_dag,
        stable_config_count: stable.len(),
        stable_matches_prediction,
        self_loops_correct,
        verified,
    })
}

/// Cross-validation on the full `k³` state space (outputs included): checks
/// that Circles *stably computes* the majority color under the classical
/// global-fairness BSCC criterion, and that every execution is eventually
/// silent.
///
/// More expensive than [`verify_circles_instance`] (the `out` register
/// multiplies the space); use for small instances.
///
/// # Errors
///
/// Same as [`verify_circles_instance`]; additionally inputs with a tie are
/// rejected as [`CirclesError::EmptyInput`] is *not* — ties simply yield
/// `holds == false` reports, since no unanimous output exists.
pub fn verify_circles_full(
    inputs: &[Color],
    k: u16,
    limits: ExploreLimits,
) -> Result<FullVerification, VerifyError> {
    let greedy = GreedyDecomposition::from_inputs(inputs, k)?;
    let protocol = CirclesProtocol::new(k)?;
    let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
    let graph = ReachabilityGraph::explore(&protocol, &initial, limits)?;
    let eventually_silent = is_eventually_silent(&graph);
    let (stably_computes, bottom_scc_count) = match greedy.winner() {
        Some(mu) => {
            let report = check_stable_computation(&graph, &protocol, &mu);
            (report.holds, report.bottom_scc_count)
        }
        None => (false, 0),
    };
    Ok(FullVerification {
        config_count: graph.len(),
        eventually_silent,
        stably_computes,
        bottom_scc_count,
    })
}

/// Outcome of [`verify_circles_full`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FullVerification {
    /// Reachable full-state configurations.
    pub config_count: usize,
    /// Every bottom SCC is one silent configuration.
    pub eventually_silent: bool,
    /// The BSCC criterion for stably computing the majority color holds.
    pub stably_computes: bool,
    /// Number of bottom SCCs.
    pub bottom_scc_count: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn colors(xs: &[u16]) -> Vec<Color> {
        xs.iter().map(|&x| Color(x)).collect()
    }

    #[test]
    fn verifies_simple_majority_instance() {
        let report =
            verify_circles_instance(&colors(&[0, 0, 1]), 2, ExploreLimits::default()).unwrap();
        assert!(report.verified, "{report:?}");
        assert_eq!(report.winner, Some(Color(0)));
        assert_eq!(report.stable_config_count, 1);
    }

    #[test]
    fn verifies_three_color_instance() {
        let report =
            verify_circles_instance(&colors(&[0, 1, 1, 2, 2, 2]), 3, ExploreLimits::default())
                .unwrap();
        assert!(report.verified, "{report:?}");
        assert_eq!(report.winner, Some(Color(2)));
    }

    #[test]
    fn tie_instance_verifies_stall_behavior() {
        let report =
            verify_circles_instance(&colors(&[0, 0, 1, 1]), 2, ExploreLimits::default()).unwrap();
        assert!(report.verified, "{report:?}");
        assert_eq!(report.winner, None);
    }

    #[test]
    fn full_verification_small_instance() {
        let report = verify_circles_full(&colors(&[0, 0, 1]), 2, ExploreLimits::default()).unwrap();
        assert!(report.eventually_silent);
        assert!(report.stably_computes);
        assert_eq!(report.bottom_scc_count, 1);
    }

    #[test]
    fn full_verification_three_colors() {
        let report =
            verify_circles_full(&colors(&[2, 2, 0, 1]), 3, ExploreLimits::default()).unwrap();
        assert!(report.eventually_silent);
        assert!(report.stably_computes);
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(matches!(
            verify_circles_instance(&[], 2, ExploreLimits::default()),
            Err(VerifyError::Circles(CirclesError::EmptyInput))
        ));
        assert!(matches!(
            verify_circles_instance(&colors(&[5]), 2, ExploreLimits::default()),
            Err(VerifyError::Circles(CirclesError::ColorOutOfRange { .. }))
        ));
    }

    #[test]
    fn limit_surfaces_as_mc_error() {
        let result = verify_circles_instance(
            &colors(&[0, 1, 2, 3, 0, 1, 2, 3]),
            4,
            ExploreLimits { max_configs: 2 },
        );
        assert!(matches!(result, Err(VerifyError::Mc(_))));
    }

    #[test]
    fn braket_dynamics_matches_paper_exchange() {
        let d = BraKetDynamics::new(3).unwrap();
        let a = BraKet::self_loop(Color(0));
        let b = BraKet::self_loop(Color(1));
        let (a2, b2) = d.transition(&a, &b);
        assert_eq!(a2, BraKet::new(Color(0), Color(1)));
        assert_eq!(b2, BraKet::new(Color(1), Color(0)));
    }
}
