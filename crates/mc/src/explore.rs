//! Breadth-first exploration of the reachable configuration space.

use std::collections::{HashMap, VecDeque};

use pp_protocol::{CountConfig, Protocol};

use crate::error::McError;
use crate::interner::StateInterner;

/// Index of a configuration inside a [`ReachabilityGraph`].
pub type ConfigId = u32;

/// A canonical configuration: sorted `(state id, count)` pairs.
type Canon = Box<[(u32, u32)]>;

/// Resource limits for exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExploreLimits {
    /// Maximum number of distinct configurations to explore.
    pub max_configs: usize,
}

impl Default for ExploreLimits {
    /// One million configurations — enough for every verification-grid
    /// instance in the experiment suite while bounding memory to ~100 MB.
    fn default() -> Self {
        ExploreLimits {
            max_configs: 1_000_000,
        }
    }
}

/// The reachable configuration graph of a protocol from one initial
/// configuration.
///
/// Nodes are anonymous configurations (multisets of states); there is an
/// edge `c → c'` when some ordered pair of distinct agents in `c` interacts
/// into `c' ≠ c`. Interactions that change *agents* but not the multiset
/// (two agents swapping states) do not create an edge but are flagged in
/// [`has_internal_swap`](ReachabilityGraph::has_internal_swap) — they matter
/// for livelock detection.
///
/// # Example
///
/// ```
/// use pp_mc::{ExploreLimits, ReachabilityGraph};
/// use pp_protocol::{CountConfig, Protocol};
///
/// # struct Max;
/// # impl Protocol for Max {
/// #     type State = u8; type Input = u8; type Output = u8;
/// #     fn name(&self) -> &str { "max" }
/// #     fn input(&self, i: &u8) -> u8 { *i }
/// #     fn output(&self, s: &u8) -> u8 { *s }
/// #     fn transition(&self, a: &u8, b: &u8) -> (u8, u8) { let m = *a.max(b); (m, m) }
/// # }
/// let initial: CountConfig<u8> = [0u8, 1, 2].into_iter().collect();
/// let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default())?;
/// // 0/1/2 merge upward; the unique silent config is {2,2,2}.
/// let silent = graph.silent_configs();
/// assert_eq!(silent.len(), 1);
/// assert_eq!(graph.config(silent[0]).count(&2), 3);
/// # Ok::<(), pp_mc::McError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ReachabilityGraph<S> {
    interner: StateInterner<S>,
    configs: Vec<Canon>,
    /// Deduplicated successors per config (state-changing edges only).
    edges: Vec<Vec<ConfigId>>,
    /// Config has an interaction that changes two agents' states but leaves
    /// the multiset unchanged (a state swap).
    internal_swap: Vec<bool>,
    initial: ConfigId,
    n: usize,
}

impl<S: Clone + Eq + Ord + std::hash::Hash + std::fmt::Debug> ReachabilityGraph<S> {
    /// Explores the configuration space of `protocol` from `initial`.
    ///
    /// # Errors
    ///
    /// [`McError::EmptyInitialConfig`] for an empty configuration;
    /// [`McError::ConfigLimitExceeded`] when the space outgrows
    /// `limits.max_configs`.
    pub fn explore<P>(
        protocol: &P,
        initial: &CountConfig<S>,
        limits: ExploreLimits,
    ) -> Result<Self, McError>
    where
        P: Protocol<State = S>,
    {
        if initial.is_empty() {
            return Err(McError::EmptyInitialConfig);
        }
        let n = initial.n();
        let mut interner = StateInterner::new();
        let mut canon_ids: HashMap<Canon, ConfigId> = HashMap::new();
        let mut configs: Vec<Canon> = Vec::new();
        let mut edges: Vec<Vec<ConfigId>> = Vec::new();
        let mut internal_swap: Vec<bool> = Vec::new();

        let canon0 = canonicalize(initial, &mut interner);
        canon_ids.insert(canon0.clone(), 0);
        configs.push(canon0);
        edges.push(Vec::new());
        internal_swap.push(false);

        let mut queue: VecDeque<ConfigId> = VecDeque::new();
        queue.push_back(0);

        while let Some(cid) = queue.pop_front() {
            let current = configs[cid as usize].clone();
            let mut succs: Vec<ConfigId> = Vec::new();
            let mut swap_here = false;

            // Enumerate ordered pairs of distinct agents by state id.
            for (ai, &(sa, ca)) in current.iter().enumerate() {
                for (bi, &(sb, cb)) in current.iter().enumerate() {
                    if ai == bi && ca < 2 {
                        continue;
                    }
                    let _ = cb;
                    let (ta, tb) = {
                        let a = interner.resolve(sa).clone();
                        let b = interner.resolve(sb).clone();
                        protocol.transition(&a, &b)
                    };
                    let ta_id = interner.intern(&ta);
                    let tb_id = interner.intern(&tb);
                    if ta_id == sa && tb_id == sb {
                        continue; // null interaction
                    }
                    // Build successor multiset.
                    let succ = apply_pair(&current, sa, sb, ta_id, tb_id);
                    if succ == current {
                        swap_here = true;
                        continue;
                    }
                    let next_id = match canon_ids.get(&succ) {
                        Some(&id) => id,
                        None => {
                            if configs.len() >= limits.max_configs {
                                return Err(McError::ConfigLimitExceeded {
                                    limit: limits.max_configs,
                                });
                            }
                            let id = configs.len() as ConfigId;
                            canon_ids.insert(succ.clone(), id);
                            configs.push(succ);
                            edges.push(Vec::new());
                            internal_swap.push(false);
                            queue.push_back(id);
                            id
                        }
                    };
                    if !succs.contains(&next_id) {
                        succs.push(next_id);
                    }
                }
            }
            succs.sort_unstable();
            edges[cid as usize] = succs;
            internal_swap[cid as usize] = swap_here;
        }

        Ok(ReachabilityGraph {
            interner,
            configs,
            edges,
            internal_swap,
            initial: 0,
            n,
        })
    }

    /// Reconstructs the configuration for `id`.
    pub fn config(&self, id: ConfigId) -> CountConfig<S> {
        let mut out = CountConfig::new();
        for &(sid, count) in self.configs[id as usize].iter() {
            out.insert(self.interner.resolve(sid).clone(), count as usize);
        }
        out
    }
}

impl<S> ReachabilityGraph<S> {
    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.configs.len()
    }

    /// Whether the graph is empty (never: exploration requires an initial
    /// configuration).
    pub fn is_empty(&self) -> bool {
        self.configs.is_empty()
    }

    /// Population size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Id of the initial configuration.
    pub fn initial(&self) -> ConfigId {
        self.initial
    }

    /// The interner mapping state ids to states.
    pub fn interner(&self) -> &StateInterner<S> {
        &self.interner
    }

    /// Successor configuration ids of `id` (state-changing edges,
    /// deduplicated, sorted).
    pub fn successors(&self, id: ConfigId) -> &[ConfigId] {
        &self.edges[id as usize]
    }

    /// All successor lists, indexed by [`ConfigId`].
    pub fn adjacency(&self) -> &[Vec<ConfigId>] {
        &self.edges
    }

    /// Whether config `id` admits an agent-state-changing interaction that
    /// leaves the multiset unchanged (a swap — an anonymous-space-invisible
    /// livelock candidate).
    pub fn has_internal_swap(&self, id: ConfigId) -> bool {
        self.internal_swap[id as usize]
    }

    /// Configurations with no outgoing changing edge and no internal swap:
    /// *silent* configurations, where no interaction changes any agent.
    pub fn silent_configs(&self) -> Vec<ConfigId> {
        (0..self.configs.len() as ConfigId)
            .filter(|&id| self.edges[id as usize].is_empty() && !self.internal_swap[id as usize])
            .collect()
    }
}

/// Canonicalizes a configuration against the interner: sorted by state id.
fn canonicalize<S: Clone + Eq + Ord + std::hash::Hash>(
    config: &CountConfig<S>,
    interner: &mut StateInterner<S>,
) -> Canon {
    let mut items: Vec<(u32, u32)> = config
        .iter()
        .map(|(s, c)| {
            (
                interner.intern(s),
                u32::try_from(c).expect("count fits u32"),
            )
        })
        .collect();
    items.sort_unstable();
    items.into_boxed_slice()
}

/// Applies one interaction to a canonical multiset: removes one agent in
/// `sa` and one in `sb`, adds one in `ta` and one in `tb`.
fn apply_pair(current: &Canon, sa: u32, sb: u32, ta: u32, tb: u32) -> Canon {
    let mut counts: Vec<(u32, i64)> = current.iter().map(|&(s, c)| (s, i64::from(c))).collect();
    let bump = |state: u32, delta: i64, counts: &mut Vec<(u32, i64)>| match counts
        .binary_search_by_key(&state, |&(s, _)| s)
    {
        Ok(pos) => counts[pos].1 += delta,
        Err(pos) => counts.insert(pos, (state, delta)),
    };
    bump(sa, -1, &mut counts);
    bump(sb, -1, &mut counts);
    bump(ta, 1, &mut counts);
    bump(tb, 1, &mut counts);
    debug_assert!(counts.iter().all(|&(_, c)| c >= 0), "negative multiplicity");
    counts
        .into_iter()
        .filter(|&(_, c)| c > 0)
        .map(|(s, c)| (s, c as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Max;

    impl Protocol for Max {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "max"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            let m = *a.max(b);
            (m, m)
        }
    }

    /// Two agents swap their states — invisible in anonymous space.
    struct Swap;

    impl Protocol for Swap {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "swap"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            (*b, *a)
        }
    }

    #[test]
    fn max_epidemic_space_is_small_and_silent_unique() {
        let initial: CountConfig<u8> = [0u8, 1, 2].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        // Reachable: {0,1,2} {1,1,2} {0,2,2} {2,2,2} {1,2,2}.
        assert_eq!(graph.len(), 5);
        let silent = graph.silent_configs();
        assert_eq!(silent.len(), 1);
        let terminal = graph.config(silent[0]);
        assert_eq!(terminal.count(&2), 3);
    }

    #[test]
    fn swap_protocol_flags_internal_swaps() {
        let initial: CountConfig<u8> = [0u8, 1].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Swap, &initial, ExploreLimits::default()).unwrap();
        assert_eq!(graph.len(), 1);
        assert!(graph.has_internal_swap(0));
        assert!(graph.silent_configs().is_empty());
    }

    #[test]
    fn uniform_population_is_terminal_for_max() {
        let initial: CountConfig<u8> = [3u8, 3, 3].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.silent_configs(), vec![0]);
    }

    #[test]
    fn limit_is_enforced() {
        let initial: CountConfig<u8> = (0u8..6).collect();
        let result = ReachabilityGraph::explore(&Max, &initial, ExploreLimits { max_configs: 3 });
        assert_eq!(
            result.unwrap_err(),
            McError::ConfigLimitExceeded { limit: 3 }
        );
    }

    #[test]
    fn empty_initial_rejected() {
        let initial: CountConfig<u8> = CountConfig::new();
        assert_eq!(
            ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap_err(),
            McError::EmptyInitialConfig
        );
    }

    #[test]
    fn single_agent_space() {
        let initial: CountConfig<u8> = [5u8].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        assert_eq!(graph.len(), 1);
        assert_eq!(graph.silent_configs(), vec![0]);
    }

    #[test]
    fn successors_are_sorted_and_deduped() {
        let initial: CountConfig<u8> = [0u8, 1, 2, 3].into_iter().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        for id in 0..graph.len() as ConfigId {
            let succ = graph.successors(id);
            assert!(succ.windows(2).all(|w| w[0] < w[1]), "unsorted successors");
        }
    }
}
