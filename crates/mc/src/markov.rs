//! Exact Markov-chain analysis under the uniform-random scheduler.
//!
//! Under uniform pair selection the anonymous configurations form a Markov
//! chain: from a configuration with multiplicities `c(s)`, the ordered state
//! pair `(s1, s2)` is drawn with probability `c(s1)(c(s2) − [s1 = s2]) /
//! (n(n−1))`. Silent configurations are absorbing. For instances small
//! enough to enumerate, this module computes the **exact expected number of
//! interactions to silence** by solving the first-step equations
//!
//! ```text
//! h(C) = 0                                   if C is silent
//! h(C) = (1 + Σ_{C'≠C} p(C→C') h(C')) / (1 − p(C→C))   otherwise
//! ```
//!
//! with damped fixed-point iteration (the chain is absorbing, so the
//! iteration contracts). Experiment E12 uses these exact values to validate
//! the simulation engines end to end: sampled means must match `h(C₀)`
//! within confidence intervals.

use std::collections::HashMap;

use pp_protocol::{CountConfig, Protocol};

use crate::error::McError;
use crate::explore::ExploreLimits;
use crate::interner::StateInterner;

/// The exact uniform-scheduler chain over reachable configurations.
#[derive(Debug, Clone)]
pub struct UniformChain {
    /// Aggregated transition probabilities to *other* configurations:
    /// `transitions[c]` lists `(successor, probability)`.
    transitions: Vec<Vec<(u32, f64)>>,
    /// Probability of staying put (null interactions and state swaps).
    self_prob: Vec<f64>,
    /// Whether the configuration is silent (absorbing).
    silent: Vec<bool>,
    initial: u32,
}

impl UniformChain {
    /// Builds the chain for `protocol` from `initial`.
    ///
    /// # Errors
    ///
    /// Same conditions as reachability exploration
    /// ([`McError::EmptyInitialConfig`], [`McError::ConfigLimitExceeded`]).
    pub fn build<P>(
        protocol: &P,
        initial: &CountConfig<P::State>,
        limits: ExploreLimits,
    ) -> Result<Self, McError>
    where
        P: Protocol,
    {
        if initial.is_empty() {
            return Err(McError::EmptyInitialConfig);
        }
        let n = initial.n();
        let denom = (n * (n - 1)) as f64;

        let mut interner: StateInterner<P::State> = StateInterner::new();
        type Canon = Box<[(u32, u32)]>;
        let canon =
            |config: &CountConfig<P::State>, interner: &mut StateInterner<P::State>| -> Canon {
                let mut v: Vec<(u32, u32)> = config
                    .iter()
                    .map(|(s, c)| (interner.intern(s), c as u32))
                    .collect();
                v.sort_unstable();
                v.into_boxed_slice()
            };

        let mut ids: HashMap<Canon, u32> = HashMap::new();
        let mut configs: Vec<CountConfig<P::State>> = Vec::new();
        let mut queue: Vec<u32> = Vec::new();
        let c0 = canon(initial, &mut interner);
        ids.insert(c0, 0);
        configs.push(initial.clone());
        queue.push(0);

        let mut transitions: Vec<Vec<(u32, f64)>> = Vec::new();
        let mut self_prob: Vec<f64> = Vec::new();
        let mut silent: Vec<bool> = Vec::new();

        let mut cursor = 0usize;
        while cursor < queue.len() {
            let cid = queue[cursor];
            cursor += 1;
            let current = configs[cid as usize].clone();
            let mut agg: HashMap<u32, f64> = HashMap::new();
            let mut stay = 0.0f64;
            let mut is_silent = true;

            let entries: Vec<(P::State, usize)> =
                current.iter().map(|(s, c)| (s.clone(), c)).collect();
            for (s1, c1) in &entries {
                for (s2, c2) in &entries {
                    let pairs = if s1 == s2 {
                        (*c1 * (*c1 - 1)) as f64
                    } else {
                        (*c1 * *c2) as f64
                    };
                    if pairs == 0.0 {
                        continue;
                    }
                    let p = pairs / denom;
                    let (t1, t2) = protocol.transition(s1, s2);
                    if t1 == *s1 && t2 == *s2 {
                        stay += p;
                        continue;
                    }
                    is_silent = false;
                    let mut succ = current.clone();
                    succ.remove(s1, 1);
                    succ.remove(s2, 1);
                    succ.insert(t1, 1);
                    succ.insert(t2, 1);
                    if succ == current {
                        // Agent-level swap, multiset unchanged.
                        stay += p;
                        continue;
                    }
                    let key = canon(&succ, &mut interner);
                    let next_id = match ids.get(&key) {
                        Some(&id) => id,
                        None => {
                            if configs.len() >= limits.max_configs {
                                return Err(McError::ConfigLimitExceeded {
                                    limit: limits.max_configs,
                                });
                            }
                            let id = configs.len() as u32;
                            ids.insert(key, id);
                            configs.push(succ);
                            queue.push(id);
                            id
                        }
                    };
                    *agg.entry(next_id).or_insert(0.0) += p;
                }
            }
            let mut outs: Vec<(u32, f64)> = agg.into_iter().collect();
            outs.sort_unstable_by_key(|&(id, _)| id);
            transitions.push(outs);
            self_prob.push(stay);
            silent.push(is_silent);
        }

        Ok(UniformChain {
            transitions,
            self_prob,
            silent,
            initial: 0,
        })
    }

    /// Number of reachable configurations.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the chain is empty (never after a successful build).
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Exact expected interactions to absorption (silence) from the initial
    /// configuration, or `None` when some recurrent non-silent behavior
    /// makes the expectation infinite (e.g. livelocking ablation variants).
    ///
    /// Solves the first-step equations by fixed-point iteration to relative
    /// tolerance `tol` (e.g. `1e-12`), capped at `max_iters` sweeps.
    pub fn expected_steps_to_silence(&self, tol: f64, max_iters: usize) -> Option<f64> {
        let m = self.len();
        // Infinite expectation iff a non-silent configuration cannot reach
        // any silent one; detect via reverse reachability from silent set.
        if !self.all_reach_silence() {
            return None;
        }
        let mut h = vec![0.0f64; m];
        for _ in 0..max_iters {
            let mut delta: f64 = 0.0;
            // Gauss-Seidel sweep (in-place update accelerates convergence).
            for c in 0..m {
                if self.silent[c] {
                    continue;
                }
                let mut acc = 1.0;
                for &(succ, p) in &self.transitions[c] {
                    acc += p * h[succ as usize];
                }
                let stay = self.self_prob[c];
                let next = acc / (1.0 - stay);
                delta = delta.max((next - h[c]).abs() / next.max(1.0));
                h[c] = next;
            }
            if delta < tol {
                return Some(h[self.initial as usize]);
            }
        }
        // Did not converge within the sweep budget: report the current
        // estimate anyway only if it is already stable to 6 digits.
        None
    }

    fn all_reach_silence(&self) -> bool {
        let m = self.len();
        // Reverse adjacency.
        let mut rev: Vec<Vec<u32>> = vec![Vec::new(); m];
        for (c, outs) in self.transitions.iter().enumerate() {
            for &(succ, _) in outs {
                rev[succ as usize].push(c as u32);
            }
        }
        let mut reach = vec![false; m];
        let mut stack: Vec<u32> = (0..m as u32).filter(|&c| self.silent[c as usize]).collect();
        for &c in &stack {
            reach[c as usize] = true;
        }
        while let Some(c) = stack.pop() {
            for &p in &rev[c as usize] {
                if !reach[p as usize] {
                    reach[p as usize] = true;
                    stack.push(p);
                }
            }
        }
        reach.into_iter().all(|r| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Epidemic one-way infection: 1 infects 0.
    struct Infect;

    impl Protocol for Infect {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "infect"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            if *a == 1 || *b == 1 {
                (1, 1)
            } else {
                (*a, *b)
            }
        }
    }

    /// Oscillator with no silent configuration.
    struct Flip;

    impl Protocol for Flip {
        type State = u8;
        type Input = u8;
        type Output = u8;

        fn name(&self) -> &str {
            "flip"
        }

        fn input(&self, i: &u8) -> u8 {
            *i
        }

        fn output(&self, s: &u8) -> u8 {
            *s
        }

        fn transition(&self, a: &u8, _b: &u8) -> (u8, u8) {
            (1 - *a, 1 - *a)
        }
    }

    #[test]
    fn two_agent_infection_is_one_step() {
        // {0,1}: every interaction infects: expected exactly 1 step.
        let initial: CountConfig<u8> = [0u8, 1].into_iter().collect();
        let chain = UniformChain::build(&Infect, &initial, ExploreLimits::default()).unwrap();
        let h = chain.expected_steps_to_silence(1e-12, 10_000).unwrap();
        assert!((h - 1.0).abs() < 1e-9, "h = {h}");
    }

    #[test]
    fn three_agent_infection_matches_hand_computation() {
        // {0,0,1}: infecting pair chosen with prob 4/6 (ordered pairs
        // involving the infected agent and a healthy one): E[first] = 3/2.
        // Then {0,1,1}: infecting prob = 1 - P(both healthy... ) ordered
        // pairs among {1,1} = 2 of 6 are null; healthy-healthy: none (one
        // healthy). p = 4/6 again: E = 3/2. Total 3.
        let initial: CountConfig<u8> = [0u8, 0, 1].into_iter().collect();
        let chain = UniformChain::build(&Infect, &initial, ExploreLimits::default()).unwrap();
        let h = chain.expected_steps_to_silence(1e-12, 10_000).unwrap();
        assert!((h - 3.0).abs() < 1e-9, "h = {h}");
    }

    #[test]
    fn oscillator_has_infinite_expectation() {
        let initial: CountConfig<u8> = [0u8, 1].into_iter().collect();
        let chain = UniformChain::build(&Flip, &initial, ExploreLimits::default()).unwrap();
        assert_eq!(chain.expected_steps_to_silence(1e-12, 1000), None);
    }

    #[test]
    fn already_silent_is_zero() {
        let initial: CountConfig<u8> = [1u8, 1, 1].into_iter().collect();
        let chain = UniformChain::build(&Infect, &initial, ExploreLimits::default()).unwrap();
        let h = chain.expected_steps_to_silence(1e-12, 100).unwrap();
        assert_eq!(h, 0.0);
    }
}
