//! Exhaustive model checking for population protocols.
//!
//! The Circles paper's theorems are ∀-schedule claims ("under every weakly
//! fair scheduler …"); simulation can only sample schedules. For a fixed
//! instance (inputs, `n`, `k`) the claim is finite-state, so it can be
//! verified *exhaustively* by exploring the reachable anonymous
//! configuration space.
//!
//! This crate provides:
//!
//! - [`ReachabilityGraph`]: BFS over canonical configurations (multisets of
//!   states) with interned states and deduplicated state-changing edges.
//! - [`scc`]: iterative Tarjan SCC decomposition and bottom-SCC extraction.
//! - [`properties`]: generic checks — silent configurations, acyclicity of
//!   the changing-edge graph, and the classic global-fairness criterion
//!   ("every bottom SCC is a unanimous, correct-output configuration set").
//! - [`circles`]: the composite, *complete* verification of the Circles
//!   protocol under weak fairness for a given instance (see below).
//!
//! # Why the Circles check is complete for weak fairness
//!
//! For Circles the verification reduces to three exhaustively checkable
//! facts plus one two-line argument (see `DESIGN.md` §5):
//!
//! 1. the bra-ket dynamics' changing-edge graph is a DAG (Theorem 3.4 — for
//!    *all* schedules, not just fair ones);
//! 2. the unique reachable exchange-stable bra-ket multiset is the
//!    `⋃ f(G_p)` prediction of Lemma 3.6 (weak fairness forces every run's
//!    tail to be exchange-stable);
//! 3. in that terminal multiset the only self-loop color is the majority
//!    color `μ` (Lemma 3.2), so output rule 2 can only write `μ` in the
//!    tail, and a `⟨μ|μ⟩` agent exists that every agent meets infinitely
//!    often (weak fairness) — outputs converge to `μ` forever.
//!
//! The bra-ket projection is sound because the exchange rule never reads the
//! `out` register.
//!
//! # Example
//!
//! ```
//! use circles_core::Color;
//! use pp_mc::circles::verify_circles_instance;
//! use pp_mc::ExploreLimits;
//!
//! let inputs: Vec<Color> = [0, 0, 1, 2].map(Color).to_vec();
//! let report = verify_circles_instance(&inputs, 3, ExploreLimits::default())?;
//! assert!(report.verified);
//! assert_eq!(report.winner, Some(Color(0)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod circles;
mod error;
mod explore;
mod interner;
pub mod markov;
pub mod properties;
pub mod scc;

pub use error::McError;
pub use explore::{ConfigId, ExploreLimits, ReachabilityGraph};
pub use interner::StateInterner;
pub use markov::UniformChain;
