//! Model-checker errors.

use std::error::Error;
use std::fmt;

/// Errors from exhaustive exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum McError {
    /// The reachable configuration space exceeded the configured limit.
    ConfigLimitExceeded {
        /// The limit that was hit.
        limit: usize,
    },
    /// The initial configuration was empty.
    EmptyInitialConfig,
}

impl fmt::Display for McError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            McError::ConfigLimitExceeded { limit } => {
                write!(f, "reachable configuration space exceeds limit of {limit}")
            }
            McError::EmptyInitialConfig => write!(f, "initial configuration is empty"),
        }
    }
}

impl Error for McError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(McError::ConfigLimitExceeded { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(!McError::EmptyInitialConfig.to_string().is_empty());
    }
}
