//! Interning protocol states to dense integer ids.

use std::collections::HashMap;
use std::hash::Hash;

/// Bidirectional map between states and dense `u32` ids, so configurations
/// can be stored as compact sorted `(id, count)` slices.
#[derive(Debug, Clone, Default)]
pub struct StateInterner<S> {
    states: Vec<S>,
    ids: HashMap<S, u32>,
}

impl<S: Clone + Eq + Hash> StateInterner<S> {
    /// Creates an empty interner.
    pub fn new() -> Self {
        StateInterner {
            states: Vec::new(),
            ids: HashMap::new(),
        }
    }

    /// Returns the id of `state`, allocating one on first sight.
    pub fn intern(&mut self, state: &S) -> u32 {
        if let Some(&id) = self.ids.get(state) {
            return id;
        }
        let id = u32::try_from(self.states.len()).expect("more than u32::MAX distinct states");
        self.states.push(state.clone());
        self.ids.insert(state.clone(), id);
        id
    }

    /// Returns the id of `state` if it was interned before.
    pub fn get(&self, state: &S) -> Option<u32> {
        self.ids.get(state).copied()
    }

    /// Resolves an id back to its state.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: u32) -> &S {
        &self.states[id as usize]
    }

    /// Number of distinct states interned.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// All interned states, in id order.
    pub fn states(&self) -> &[S] {
        &self.states
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut interner = StateInterner::new();
        let a = interner.intern(&"alpha");
        let b = interner.intern(&"beta");
        assert_ne!(a, b);
        assert_eq!(interner.intern(&"alpha"), a);
        assert_eq!(interner.len(), 2);
    }

    #[test]
    fn resolve_round_trips() {
        let mut interner = StateInterner::new();
        let id = interner.intern(&42u32);
        assert_eq!(*interner.resolve(id), 42);
        assert_eq!(interner.get(&42), Some(id));
        assert_eq!(interner.get(&7), None);
    }
}
