//! Iterative Tarjan strongly-connected-component decomposition and
//! bottom-SCC extraction.

use crate::explore::ConfigId;

/// The SCC decomposition of a directed graph given as adjacency lists.
#[derive(Debug, Clone)]
pub struct SccDecomposition {
    /// `component[v]` = index of v's SCC.
    pub component: Vec<u32>,
    /// Members of each SCC. Tarjan emits components in reverse topological
    /// order: if SCC `a` can reach SCC `b` (a ≠ b) then `a`'s index is
    /// greater than `b`'s.
    pub members: Vec<Vec<ConfigId>>,
}

/// Computes the SCCs of `adj` with an iterative Tarjan (no recursion, safe
/// for deep graphs).
pub fn tarjan(adj: &[Vec<ConfigId>]) -> SccDecomposition {
    let n = adj.len();
    const UNVISITED: u32 = u32::MAX;
    let mut index = vec![UNVISITED; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;
    let mut component = vec![u32::MAX; n];
    let mut members: Vec<Vec<ConfigId>> = Vec::new();

    // Explicit DFS stack: (node, next edge cursor).
    let mut work: Vec<(u32, usize)> = Vec::new();

    for start in 0..n as u32 {
        if index[start as usize] != UNVISITED {
            continue;
        }
        work.push((start, 0));
        index[start as usize] = next_index;
        low[start as usize] = next_index;
        next_index += 1;
        stack.push(start);
        on_stack[start as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = work.last_mut() {
            let vi = v as usize;
            if *cursor < adj[vi].len() {
                let w = adj[vi][*cursor];
                *cursor += 1;
                let wi = w as usize;
                if index[wi] == UNVISITED {
                    index[wi] = next_index;
                    low[wi] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[wi] = true;
                    work.push((w, 0));
                } else if on_stack[wi] {
                    low[vi] = low[vi].min(index[wi]);
                }
            } else {
                // v is done: maybe emit an SCC, then propagate low upward.
                if low[vi] == index[vi] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        component[w as usize] = members.len() as u32;
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    members.push(scc);
                }
                work.pop();
                if let Some(&mut (parent, _)) = work.last_mut() {
                    let pi = parent as usize;
                    low[pi] = low[pi].min(low[vi]);
                }
            }
        }
    }

    SccDecomposition { component, members }
}

impl SccDecomposition {
    /// Indices of *bottom* SCCs: components with no edge leaving them.
    /// Every fair execution eventually enters a bottom SCC.
    pub fn bottom_sccs(&self, adj: &[Vec<ConfigId>]) -> Vec<u32> {
        let mut is_bottom = vec![true; self.members.len()];
        for (v, succs) in adj.iter().enumerate() {
            let cv = self.component[v];
            for &w in succs {
                if self.component[w as usize] != cv {
                    is_bottom[cv as usize] = false;
                }
            }
        }
        (0..self.members.len() as u32)
            .filter(|&c| is_bottom[c as usize])
            .collect()
    }

    /// Whether the graph restricted to its (changing) edges is acyclic:
    /// every SCC is a singleton without a self-edge.
    pub fn is_dag(&self, adj: &[Vec<ConfigId>]) -> bool {
        if self.members.iter().any(|m| m.len() > 1) {
            return false;
        }
        // Self-loops: a node listing itself as successor.
        !adj.iter()
            .enumerate()
            .any(|(v, succs)| succs.contains(&(v as u32)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_chain_is_dag() {
        // 0 → 1 → 2
        let adj = vec![vec![1], vec![2], vec![]];
        let scc = tarjan(&adj);
        assert_eq!(scc.members.len(), 3);
        assert!(scc.is_dag(&adj));
        assert_eq!(scc.bottom_sccs(&adj).len(), 1);
        let bottom = scc.bottom_sccs(&adj)[0];
        assert_eq!(scc.members[bottom as usize], vec![2]);
    }

    #[test]
    fn cycle_is_single_scc() {
        // 0 → 1 → 2 → 0
        let adj = vec![vec![1], vec![2], vec![0]];
        let scc = tarjan(&adj);
        assert_eq!(scc.members.len(), 1);
        assert_eq!(scc.members[0], vec![0, 1, 2]);
        assert!(!scc.is_dag(&adj));
        assert_eq!(scc.bottom_sccs(&adj), vec![0]);
    }

    #[test]
    fn diamond_with_tail_cycle() {
        // 0 → 1, 0 → 2, 1 → 3, 2 → 3, 3 → 4, 4 → 3 (bottom cycle {3,4})
        let adj = vec![vec![1, 2], vec![3], vec![3], vec![4], vec![3]];
        let scc = tarjan(&adj);
        assert_eq!(scc.members.len(), 4);
        let bottoms = scc.bottom_sccs(&adj);
        assert_eq!(bottoms.len(), 1);
        assert_eq!(scc.members[bottoms[0] as usize], vec![3, 4]);
        assert!(!scc.is_dag(&adj));
    }

    #[test]
    fn self_loop_breaks_dag() {
        let adj = vec![vec![0]];
        let scc = tarjan(&adj);
        assert_eq!(scc.members.len(), 1);
        assert!(!scc.is_dag(&adj));
    }

    #[test]
    fn two_disconnected_bottoms() {
        // 0 → 1, 2 → 3; bottoms {1} and {3}.
        let adj = vec![vec![1], vec![], vec![3], vec![]];
        let scc = tarjan(&adj);
        let bottoms = scc.bottom_sccs(&adj);
        assert_eq!(bottoms.len(), 2);
    }

    #[test]
    fn empty_graph() {
        let adj: Vec<Vec<ConfigId>> = Vec::new();
        let scc = tarjan(&adj);
        assert!(scc.members.is_empty());
        assert!(scc.is_dag(&adj));
    }

    #[test]
    fn reverse_topological_emission_order() {
        // 0 → 1 → 2: Tarjan emits 2 first, then 1, then 0.
        let adj = vec![vec![1], vec![2], vec![]];
        let scc = tarjan(&adj);
        assert_eq!(scc.members[0], vec![2]);
        assert_eq!(scc.members[2], vec![0]);
    }
}
