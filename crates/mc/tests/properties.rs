//! Property-based tests of the model checker itself: the explorer against a
//! brute-force reference, and SCC analysis against structural facts.

use pp_mc::properties::{check_stable_computation, is_eventually_silent};
use pp_mc::scc::tarjan;
use pp_mc::{ExploreLimits, ReachabilityGraph};
use pp_protocol::{CountConfig, Population, Protocol, Simulation, UniformPairScheduler};
use proptest::prelude::*;

struct Max;

impl Protocol for Max {
    type State = u8;
    type Input = u8;
    type Output = u8;

    fn name(&self) -> &str {
        "max"
    }

    fn input(&self, i: &u8) -> u8 {
        *i
    }

    fn output(&self, s: &u8) -> u8 {
        *s
    }

    fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
        let m = *a.max(b);
        (m, m)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every configuration a simulation visits must be in the explored
    /// reachable set (exploration is complete).
    #[test]
    fn exploration_covers_simulated_runs(
        states in proptest::collection::vec(0u8..5, 2..7),
        seed in any::<u64>(),
    ) {
        let initial: CountConfig<u8> = states.iter().copied().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        let reachable: std::collections::HashSet<CountConfig<u8>> =
            (0..graph.len() as u32).map(|id| graph.config(id)).collect();

        let population: Population<u8> = states.iter().copied().collect();
        let mut sim = Simulation::new(&Max, population, UniformPairScheduler::new(), seed);
        for _ in 0..100 {
            let _ = sim.step().unwrap();
            let config = sim.population().to_count_config();
            prop_assert!(reachable.contains(&config), "visited unexplored config {config:?}");
        }
    }

    /// For the max protocol the answer is known: it stably computes the
    /// maximum and nothing else, and is eventually silent.
    #[test]
    fn max_protocol_ground_truth(states in proptest::collection::vec(0u8..6, 2..7)) {
        let expected = *states.iter().max().unwrap();
        let initial: CountConfig<u8> = states.iter().copied().collect();
        let graph = ReachabilityGraph::explore(&Max, &initial, ExploreLimits::default()).unwrap();
        prop_assert!(is_eventually_silent(&graph));
        prop_assert!(check_stable_computation(&graph, &Max, &expected).holds);
        // Any value strictly below the max is not stably computed (unless
        // it equals the max, excluded).
        if expected > 0 {
            let wrong = expected - 1;
            prop_assert!(!check_stable_computation(&graph, &Max, &wrong).holds);
        }
        // The number of silent configs is exactly 1: everyone at max.
        prop_assert_eq!(graph.silent_configs().len(), 1);
    }

    /// Tarjan invariants on random graphs: components partition the nodes,
    /// and edges never point from a lower to a higher component index
    /// (reverse-topological emission).
    #[test]
    fn tarjan_structural_invariants(
        edges in proptest::collection::vec((0u32..12, 0u32..12), 0..60),
        n in 1u32..12,
    ) {
        let n = n as usize;
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (u, v) in edges {
            let (u, v) = (u % n as u32, v % n as u32);
            if !adj[u as usize].contains(&v) {
                adj[u as usize].push(v);
            }
        }
        let scc = tarjan(&adj);
        // Partition.
        let mut seen = vec![false; n];
        for members in &scc.members {
            for &v in members {
                prop_assert!(!seen[v as usize], "node {v} in two components");
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
        // Edge direction: components are emitted callees-first, so an edge
        // u→v across components must satisfy comp[u] > comp[v].
        for (u, succs) in adj.iter().enumerate() {
            for &v in succs {
                let cu = scc.component[u];
                let cv = scc.component[v as usize];
                if cu != cv {
                    prop_assert!(cu > cv, "edge {u}→{v} violates topo order");
                }
            }
        }
        // Bottom SCCs have no outgoing edges.
        for &b in &scc.bottom_sccs(&adj) {
            for &v in &scc.members[b as usize] {
                for &w in &adj[v as usize] {
                    prop_assert_eq!(scc.component[w as usize], b);
                }
            }
        }
    }
}
