//! Property-based tests for the baseline protocols' defining invariants.

use circles_core::Color;
use pp_baselines::{
    CancellationPlurality, CancellationState, FourState, FourStateMajority, UndecidedDynamics,
};
use pp_protocol::{Population, Simulation, UniformPairScheduler};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Four-state majority: the strong-count difference is invariant under
    /// any interaction sequence, and with a strict majority the final
    /// consensus is always the majority color.
    #[test]
    fn four_state_invariant_and_correctness(
        zeros in 1usize..8,
        ones in 1usize..8,
        seed in any::<u64>(),
    ) {
        prop_assume!(zeros != ones);
        let mut inputs = vec![Color(0); zeros];
        inputs.extend(vec![Color(1); ones]);
        let protocol = FourStateMajority::new();
        let population = Population::from_inputs(&protocol, &inputs);
        let diff = |p: &Population<FourState>| -> i64 {
            p.iter()
                .map(|s| match s {
                    FourState::StrongZero => 1i64,
                    FourState::StrongOne => -1,
                    _ => 0,
                })
                .sum()
        };
        let initial_diff = diff(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..200 {
            let _ = sim.step().unwrap();
            prop_assert_eq!(diff(sim.population()), initial_diff);
        }
        let report = sim.run_until_silent(10_000_000, 8).unwrap();
        let expected = Color(u16::from(ones > zeros));
        prop_assert_eq!(report.consensus, Some(expected));
    }

    /// Undecided dynamics: the number of *decided* agents never increases
    /// by more than it should — decided agents are only created from
    /// undecided ones by adoption, so (#decided colors present) never
    /// grows, and total population is preserved.
    #[test]
    fn undecided_dynamics_opinions_only_disappear(
        raw in proptest::collection::vec(0u16..4, 2..16),
        seed in any::<u64>(),
        steps in 1u64..400,
    ) {
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        let protocol = UndecidedDynamics::new(4);
        let population = Population::from_inputs(&protocol, &inputs);
        let colors_present = |p: &Population<pp_baselines::UndecidedState>| {
            p.iter()
                .filter(|s| s.is_decided())
                .map(|s| s.color())
                .collect::<std::collections::HashSet<_>>()
        };
        let mut last = colors_present(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..steps {
            let _ = sim.step().unwrap();
            let now = colors_present(sim.population());
            prop_assert!(now.is_subset(&last), "a dead opinion was resurrected");
            last = now;
        }
    }

    /// Cancellation: the per-color token-count *differences* are invariant
    /// for k = 2 (which is why the binary case is correct).
    #[test]
    fn cancellation_binary_token_difference_invariant(
        zeros in 1usize..8,
        ones in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut inputs = vec![Color(0); zeros];
        inputs.extend(vec![Color(1); ones]);
        let protocol = CancellationPlurality::new(2);
        let population = Population::from_inputs(&protocol, &inputs);
        let token_diff = |p: &Population<CancellationState>| -> i64 {
            p.iter()
                .map(|s| match s {
                    CancellationState::Token(Color(0)) => 1i64,
                    CancellationState::Token(Color(1)) => -1,
                    _ => 0,
                })
                .sum()
        };
        let initial = token_diff(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..300 {
            let _ = sim.step().unwrap();
            prop_assert_eq!(token_diff(sim.population()), initial);
        }
    }

    /// Cancellation never creates tokens: the total token count is
    /// non-increasing for any k.
    #[test]
    fn cancellation_tokens_never_increase(
        raw in proptest::collection::vec(0u16..5, 2..14),
        seed in any::<u64>(),
    ) {
        let inputs: Vec<Color> = raw.iter().map(|&c| Color(c)).collect();
        let protocol = CancellationPlurality::new(5);
        let population = Population::from_inputs(&protocol, &inputs);
        let count_tokens = |p: &Population<CancellationState>| {
            p.iter().filter(|s| s.has_token()).count()
        };
        let mut last = count_tokens(&population);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        for _ in 0..300 {
            let _ = sim.step().unwrap();
            let now = count_tokens(sim.population());
            prop_assert!(now <= last);
            last = now;
        }
    }
}
