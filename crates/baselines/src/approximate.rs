//! The 3-state *approximate majority* protocol (Angluin–Aspnes–Eisenstat).
//!
//! States `{X, Y, ⊥}`: one state per color plus a single undecided "blank".
//! Transitions (both orientations):
//!
//! ```text
//! X + Y → X + ⊥      (a decided agent blanks an opposing decided agent)
//! Y + X → ⊥ + X
//! X + ⊥ → X + X      (a decided agent recruits a blank)
//! Y + ⊥ → Y + Y
//! ```
//!
//! With three states this protocol sits *below* the `Ω(k²)` always-correct
//! lower bound the Circles paper cites — and indeed it is **not**
//! always-correct: under uniform-random scheduling it converges to the
//! initial majority with probability `1 − o(1)` only when the margin is
//! `ω(√n log n)`, and at margin `O(√n)` it errs with constant probability.
//! It is the canonical "fast but approximate" point of the
//! state-complexity/correctness trade-off Circles navigates, which is why
//! experiment E16 plots it next to the always-correct 4-state automaton and
//! Circles itself.
//!
//! A subtlety worth documenting for reuse: this implementation makes the
//! *initiator* act on the responder (one-directional rules in both
//! orientations), which matches the standard two-way-communication form of
//! the protocol and keeps it symmetric in effect.

use circles_core::Color;
use pp_protocol::{EnumerableProtocol, Protocol};

/// A 3-state agent: decided on one of two colors, or blank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum TriState {
    /// Decided on color 0 (`X`).
    Zero,
    /// Decided on color 1 (`Y`).
    One,
    /// Undecided (`⊥`). Outputs color 0 by convention — approximate
    /// majority's guarantee only concerns runs that *finish*, where no
    /// blanks remain.
    Blank,
}

impl TriState {
    /// The color this state outputs (blank agents report color 0 by the
    /// documented convention).
    pub fn color(self) -> Color {
        match self {
            TriState::Zero | TriState::Blank => Color(0),
            TriState::One => Color(1),
        }
    }
}

/// The 3-state approximate-majority protocol for `k = 2`.
///
/// # Example
///
/// With a comfortable margin the protocol converges to the majority:
///
/// ```
/// use circles_core::Color;
/// use pp_baselines::ApproximateMajority;
/// use pp_protocol::{Population, Simulation, UniformPairScheduler};
///
/// let protocol = ApproximateMajority::new();
/// let inputs: Vec<Color> = [0, 0, 0, 0, 0, 0, 1, 1].map(Color).to_vec();
/// let population = Population::from_inputs(&protocol, &inputs);
/// let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 5);
/// let report = sim.run_until_silent(100_000, 8)?;
/// assert_eq!(report.consensus, Some(Color(0)));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ApproximateMajority {
    _private: (),
}

impl ApproximateMajority {
    /// Creates the protocol.
    pub fn new() -> Self {
        ApproximateMajority { _private: () }
    }
}

impl Protocol for ApproximateMajority {
    type State = TriState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        "approximate-majority"
    }

    /// # Panics
    ///
    /// Panics when the input color is not 0 or 1 — this protocol is
    /// specific to `k = 2`.
    fn input(&self, input: &Color) -> TriState {
        match input.0 {
            0 => TriState::Zero,
            1 => TriState::One,
            other => panic!("approximate majority is binary; got color {other}"),
        }
    }

    fn output(&self, state: &TriState) -> Color {
        state.color()
    }

    fn transition(&self, initiator: &TriState, responder: &TriState) -> (TriState, TriState) {
        use TriState::*;
        match (*initiator, *responder) {
            (Zero, One) => (Zero, Blank),
            (One, Zero) => (One, Blank),
            (Zero, Blank) => (Zero, Zero),
            (One, Blank) => (One, One),
            (Blank, Zero) => (Zero, Zero),
            (Blank, One) => (One, One),
            other => other,
        }
    }

    // Not symmetric: X + Y blanks the *responder*, so the initiator's color
    // survives the clash — the default `is_symmetric() == false` stands.
}

impl EnumerableProtocol for ApproximateMajority {
    fn states(&self) -> Vec<TriState> {
        vec![TriState::Zero, TriState::One, TriState::Blank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{Population, Simulation, UniformPairScheduler};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    fn run(inputs: &[u16], seed: u64) -> Option<Color> {
        let protocol = ApproximateMajority::new();
        let colors: Vec<Color> = inputs.iter().map(|&c| Color(c)).collect();
        let population = Population::from_inputs(&protocol, &colors);
        let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
        sim.run_until_silent(1_000_000, 8)
            .ok()
            .and_then(|r| r.consensus)
    }

    #[test]
    fn state_complexity_is_three() {
        assert_eq!(ApproximateMajority::new().state_complexity(), 3);
    }

    #[test]
    fn clash_is_initiator_asymmetric_and_recruitment_is_not() {
        let p = ApproximateMajority::new();
        // X + Y: the initiator's color survives either way round.
        assert_eq!(
            p.transition(&TriState::Zero, &TriState::One),
            (TriState::Zero, TriState::Blank)
        );
        assert_eq!(
            p.transition(&TriState::One, &TriState::Zero),
            (TriState::One, TriState::Blank)
        );
        // Recruitment of blanks works in both roles.
        assert_eq!(
            p.transition(&TriState::Blank, &TriState::One),
            (TriState::One, TriState::One)
        );
        assert_eq!(
            p.transition(&TriState::One, &TriState::Blank),
            (TriState::One, TriState::One)
        );
    }

    #[test]
    fn converges_with_clear_majority() {
        // Margin 10 at n = 14: the error probability is negligible, and the
        // seeds are fixed, so this is a deterministic check.
        let inputs = [0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 1];
        for seed in 0..10 {
            assert_eq!(run(&inputs, seed), Some(Color(0)), "seed {seed}");
        }
    }

    #[test]
    fn consensus_is_absorbing() {
        // All-X is silent; so is all-Y.
        let p = ApproximateMajority::new();
        assert!(p.is_null_interaction(&TriState::Zero, &TriState::Zero));
        assert!(p.is_null_interaction(&TriState::One, &TriState::One));
        // X + Y is productive: no deadlock short of consensus.
        assert!(!p.is_null_interaction(&TriState::Zero, &TriState::One));
        assert!(!p.is_null_interaction(&TriState::Zero, &TriState::Blank));
    }

    #[test]
    fn errs_with_constant_probability_at_margin_two() {
        // n = 10, margin 2 (6 vs 4): the minority must win in a noticeable
        // fraction of runs — that failure is the point of this baseline.
        let mut wrong = 0;
        let trials = 400;
        for seed in 0..trials {
            if run(&[0, 0, 0, 0, 0, 0, 1, 1, 1, 1], seed) == Some(Color(1)) {
                wrong += 1;
            }
        }
        assert!(
            wrong > trials / 20,
            "only {wrong}/{trials} wrong runs; approximate majority should err often at margin 2"
        );
        assert!(
            wrong < trials / 2,
            "{wrong}/{trials} wrong runs; the majority should still win more often than not"
        );
    }

    #[test]
    fn every_run_ends_in_unanimous_decided_states() {
        // Whatever the verdict, a silent configuration has no blanks and a
        // single decided color (X+Y and X+⊥ are both productive).
        let protocol = ApproximateMajority::new();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..20 {
            let n = rng.random_range(4..40);
            let zeros = rng.random_range(1..n);
            let inputs: Vec<Color> = (0..n).map(|i| Color(u16::from(i >= zeros))).collect();
            let population = Population::from_inputs(&protocol, &inputs);
            let seed = rng.random();
            let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), seed);
            let report = sim.run_until_silent(1_000_000, 8).unwrap();
            assert!(report.consensus.is_some(), "silent but not unanimous");
            let states: std::collections::HashSet<_> = sim.population().iter().copied().collect();
            assert!(!states.contains(&TriState::Blank), "blank survived silence");
            assert_eq!(states.len(), 1, "two decided colors cannot both be silent");
        }
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn non_binary_input_panics() {
        let _ = ApproximateMajority::new().input(&Color(2));
    }
}
