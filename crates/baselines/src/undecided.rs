//! Undecided-state dynamics (USD) for `k` colors.
//!
//! The plurality-consensus dynamics of the gossip literature (the paper's
//! reference [5], Becchetti et al., SODA 2015), phrased as a population
//! protocol: when two agents with *different* decided colors meet, the
//! responder loses its opinion; an undecided agent adopts the color of any
//! decided agent it meets.
//!
//! Fast and tiny, but only correct *with high probability* under
//! uniform-random scheduling when the plurality has a sufficient margin —
//! and an adversarial weakly fair scheduler can make any color win.
//! Experiments E5/E6 use it as the "fast but fragile" contrast to Circles'
//! always-correctness.
//!
//! Our encoding keeps the last decided color inside the undecided state so
//! that every agent always has a well-defined output; this costs a factor 2
//! (2k states instead of k+1) but makes output accounting faithful.

use circles_core::Color;
use pp_protocol::{EnumerableProtocol, Protocol};

/// An agent's state in undecided-state dynamics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UndecidedState {
    /// Holds an opinion.
    Decided(Color),
    /// Lost its opinion; remembers the last one for output purposes.
    Undecided(Color),
}

impl UndecidedState {
    /// The color this agent currently reports.
    pub fn color(self) -> Color {
        match self {
            UndecidedState::Decided(c) | UndecidedState::Undecided(c) => c,
        }
    }

    /// Whether the agent holds an opinion.
    pub fn is_decided(self) -> bool {
        matches!(self, UndecidedState::Decided(_))
    }
}

/// Undecided-state dynamics over `k` colors; see the module-level
/// documentation above for the transition rules and caveats.
///
/// # Example
///
/// ```
/// use circles_core::Color;
/// use pp_baselines::UndecidedDynamics;
/// use pp_protocol::{Population, Simulation, UniformPairScheduler};
///
/// let protocol = UndecidedDynamics::new(3);
/// let inputs: Vec<Color> = [0, 0, 0, 0, 0, 1, 2].map(Color).to_vec();
/// let population = Population::from_inputs(&protocol, &inputs);
/// let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 11);
/// let report = sim.run_until_silent(1_000_000, 8)?;
/// // With this margin USD almost always lands on the plurality color —
/// // but unlike Circles, it carries no guarantee.
/// assert!(report.consensus.is_some());
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UndecidedDynamics {
    k: u16,
}

impl UndecidedDynamics {
    /// Creates the dynamics for `k` colors.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "k must be at least 1");
        UndecidedDynamics { k }
    }

    /// The number of colors.
    pub fn k(&self) -> u16 {
        self.k
    }
}

impl Protocol for UndecidedDynamics {
    type State = UndecidedState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        "undecided-dynamics"
    }

    /// # Panics
    ///
    /// Panics when the input color is `>= k`.
    fn input(&self, input: &Color) -> UndecidedState {
        assert!(input.0 < self.k, "input color {input} out of range");
        UndecidedState::Decided(*input)
    }

    fn output(&self, state: &UndecidedState) -> Color {
        state.color()
    }

    fn transition(
        &self,
        initiator: &UndecidedState,
        responder: &UndecidedState,
    ) -> (UndecidedState, UndecidedState) {
        use UndecidedState::*;
        match (*initiator, *responder) {
            (Decided(x), Decided(y)) if x != y => (Decided(x), Undecided(y)),
            (Undecided(_), Decided(x)) => (Decided(x), Decided(x)),
            (Decided(x), Undecided(_)) => (Decided(x), Decided(x)),
            other => other,
        }
    }
}

impl EnumerableProtocol for UndecidedDynamics {
    fn states(&self) -> Vec<UndecidedState> {
        let mut out = Vec::with_capacity(2 * usize::from(self.k));
        for c in 0..self.k {
            out.push(UndecidedState::Decided(Color(c)));
        }
        for c in 0..self.k {
            out.push(UndecidedState::Undecided(Color(c)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{Population, Simulation, UniformPairScheduler};

    #[test]
    fn state_complexity_is_two_k() {
        assert_eq!(UndecidedDynamics::new(5).state_complexity(), 10);
    }

    #[test]
    fn decided_clash_undecides_responder() {
        let p = UndecidedDynamics::new(3);
        let (a, b) = p.transition(
            &UndecidedState::Decided(Color(0)),
            &UndecidedState::Decided(Color(2)),
        );
        assert_eq!(a, UndecidedState::Decided(Color(0)));
        assert_eq!(b, UndecidedState::Undecided(Color(2)));
    }

    #[test]
    fn undecided_adopts() {
        let p = UndecidedDynamics::new(3);
        let (a, b) = p.transition(
            &UndecidedState::Undecided(Color(1)),
            &UndecidedState::Decided(Color(2)),
        );
        assert_eq!(a, UndecidedState::Decided(Color(2)));
        assert_eq!(b, UndecidedState::Decided(Color(2)));
    }

    #[test]
    fn same_color_is_null() {
        let p = UndecidedDynamics::new(2);
        assert!(p.is_null_interaction(
            &UndecidedState::Decided(Color(1)),
            &UndecidedState::Decided(Color(1))
        ));
        assert!(p.is_null_interaction(
            &UndecidedState::Undecided(Color(0)),
            &UndecidedState::Undecided(Color(1))
        ));
    }

    #[test]
    fn lands_on_some_consensus() {
        let p = UndecidedDynamics::new(4);
        let inputs: Vec<Color> = (0..40)
            .map(|i| Color(if i < 25 { 0 } else { (i % 3 + 1) as u16 }))
            .collect();
        let population = Population::from_inputs(&p, &inputs);
        let mut sim = Simulation::new(&p, population, UniformPairScheduler::new(), 5);
        let report = sim.run_until_silent(10_000_000, 32).unwrap();
        // Strong margin: should land on color 0 here (probabilistic but
        // seed-pinned).
        assert_eq!(report.consensus, Some(Color(0)));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_validated() {
        let _ = UndecidedDynamics::new(2).input(&Color(2));
    }
}
