//! The classical 4-state exact-majority protocol (`k = 2`).
//!
//! States `{A, B, a, b}`: a *strong* and a *weak* variant per color.
//! Transitions:
//!
//! ```text
//! A + B → a + b      (strong opposites annihilate into weak)
//! A + b → A + a      (a strong agent converts opposing weak agents)
//! B + a → B + b
//! ```
//!
//! The difference `#A − #B` of strong counts is invariant, so with a strict
//! majority the minority's strong agents die out, the surviving strong color
//! converts every opposing weak agent, and all outputs agree with the
//! majority — under *any* weakly fair scheduler. This is the
//! Draief–Vojnović / Mertzios-style automaton the literature credits with
//! optimal state count for always-correct exact majority.

use circles_core::Color;
use pp_protocol::{EnumerableProtocol, Protocol};

/// A 4-state agent: strong or weak, for one of two colors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FourState {
    /// Strong opinion for color 0 (`A`).
    StrongZero,
    /// Strong opinion for color 1 (`B`).
    StrongOne,
    /// Weak opinion for color 0 (`a`).
    WeakZero,
    /// Weak opinion for color 1 (`b`).
    WeakOne,
}

impl FourState {
    /// The color this state outputs.
    pub fn color(self) -> Color {
        match self {
            FourState::StrongZero | FourState::WeakZero => Color(0),
            FourState::StrongOne | FourState::WeakOne => Color(1),
        }
    }

    /// Whether the state is strong.
    pub fn is_strong(self) -> bool {
        matches!(self, FourState::StrongZero | FourState::StrongOne)
    }
}

/// The 4-state exact-majority protocol. See the module-level documentation
/// above for the transition table and correctness argument.
///
/// # Example
///
/// ```
/// use circles_core::Color;
/// use pp_baselines::FourStateMajority;
/// use pp_protocol::{Population, Simulation, UniformPairScheduler};
///
/// let protocol = FourStateMajority::new();
/// let inputs: Vec<Color> = [0, 0, 0, 1, 1].map(Color).to_vec();
/// let population = Population::from_inputs(&protocol, &inputs);
/// let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 3);
/// let report = sim.run_until_silent(100_000, 8)?;
/// assert_eq!(report.consensus, Some(Color(0)));
/// # Ok::<(), pp_protocol::FrameworkError>(())
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FourStateMajority {
    _private: (),
}

impl FourStateMajority {
    /// Creates the protocol.
    pub fn new() -> Self {
        FourStateMajority { _private: () }
    }
}

impl Protocol for FourStateMajority {
    type State = FourState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        "four-state-majority"
    }

    /// # Panics
    ///
    /// Panics when the input color is not 0 or 1 — this protocol is
    /// specific to `k = 2`.
    fn input(&self, input: &Color) -> FourState {
        match input.0 {
            0 => FourState::StrongZero,
            1 => FourState::StrongOne,
            other => panic!("four-state majority is binary; got color {other}"),
        }
    }

    fn output(&self, state: &FourState) -> Color {
        state.color()
    }

    fn transition(&self, initiator: &FourState, responder: &FourState) -> (FourState, FourState) {
        use FourState::*;
        match (*initiator, *responder) {
            // Strong opposites annihilate into weak.
            (StrongZero, StrongOne) => (WeakZero, WeakOne),
            (StrongOne, StrongZero) => (WeakOne, WeakZero),
            // Strong converts opposing weak.
            (StrongZero, WeakOne) => (StrongZero, WeakZero),
            (WeakOne, StrongZero) => (WeakZero, StrongZero),
            (StrongOne, WeakZero) => (StrongOne, WeakOne),
            (WeakZero, StrongOne) => (WeakOne, StrongOne),
            // Everything else is a null interaction.
            other => other,
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

impl EnumerableProtocol for FourStateMajority {
    fn states(&self) -> Vec<FourState> {
        vec![
            FourState::StrongZero,
            FourState::StrongOne,
            FourState::WeakZero,
            FourState::WeakOne,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::{Population, Simulation, UniformPairScheduler};

    #[test]
    fn state_complexity_is_four() {
        assert_eq!(FourStateMajority::new().state_complexity(), 4);
    }

    #[test]
    fn strong_difference_is_invariant() {
        let p = FourStateMajority::new();
        let diff = |s: &[FourState]| -> i64 {
            s.iter()
                .map(|x| match x {
                    FourState::StrongZero => 1,
                    FourState::StrongOne => -1,
                    _ => 0,
                })
                .sum()
        };
        for a in p.states() {
            for b in p.states() {
                let (a2, b2) = p.transition(&a, &b);
                assert_eq!(diff(&[a, b]), diff(&[a2, b2]), "at ({a:?}, {b:?})");
            }
        }
    }

    #[test]
    fn converges_to_majority() {
        let p = FourStateMajority::new();
        let inputs: Vec<Color> = [1, 1, 1, 1, 0, 0, 0].map(Color).to_vec();
        let population = Population::from_inputs(&p, &inputs);
        let mut sim = Simulation::new(&p, population, UniformPairScheduler::new(), 17);
        let report = sim.run_until_silent(1_000_000, 8).unwrap();
        assert_eq!(report.consensus, Some(Color(1)));
    }

    #[test]
    fn minority_of_one_strong_agent_wins_margin() {
        let p = FourStateMajority::new();
        let inputs: Vec<Color> = [0, 0, 0, 1, 1].map(Color).to_vec();
        let population = Population::from_inputs(&p, &inputs);
        let mut sim = Simulation::new(&p, population, UniformPairScheduler::new(), 4);
        let report = sim.run_until_silent(1_000_000, 8).unwrap();
        assert_eq!(report.consensus, Some(Color(0)));
        // The final population keeps exactly the strong margin.
        let strong = sim.population().iter().filter(|s| s.is_strong()).count();
        assert_eq!(strong, 1);
    }

    #[test]
    #[should_panic(expected = "binary")]
    fn rejects_non_binary_colors() {
        let _ = FourStateMajority::new().input(&Color(2));
    }

    #[test]
    fn weak_pairs_are_null() {
        let p = FourStateMajority::new();
        assert!(p.is_null_interaction(&FourState::WeakZero, &FourState::WeakOne));
        assert!(p.is_null_interaction(&FourState::WeakOne, &FourState::WeakOne));
    }
}
