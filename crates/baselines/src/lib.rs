//! Baseline majority/plurality population protocols.
//!
//! The Circles paper positions its `k³` state complexity against prior
//! protocols. The exact `O(k⁷)` construction of Gąsieniec et al. \[10\] is not
//! reconstructible from the brief announcement (its state count enters the
//! experiments analytically — see `DESIGN.md` §4); this crate implements the
//! classical baselines that anchor the correctness/speed/state-count
//! trade-offs empirically:
//!
//! - [`FourStateMajority`]: the classical always-correct *exact majority*
//!   protocol for `k = 2` with 4 states — the benchmark Circles matches at
//!   `k = 2` with `8 = 2³` states.
//! - [`UndecidedDynamics`]: undecided-state dynamics (the paper's reference
//!   \[5\] family): fast, tiny (2k states in our output-faithful encoding),
//!   but only correct with high probability under uniform-random scheduling
//!   — and breakable by an adversarial weakly fair scheduler.
//! - [`CancellationPlurality`]: greedy pairwise cancellation (2k states).
//!   Correct for `k = 2` (token difference is invariant), *incorrect* for
//!   `k ≥ 3`: schedules exist — and occur with noticeable probability — in
//!   which a non-plurality color survives. Experiment E6 quantifies this.
//! - [`ApproximateMajority`]: the 3-state Angluin–Aspnes–Eisenstat
//!   protocol — below the `Ω(k²)` always-correct lower bound, and
//!   accordingly wrong with constant probability at small margins.
//!   Experiment E16 places it on the state-count/accuracy plane next to
//!   the 4-state automaton and Circles.
//!
//! All four implement [`pp_protocol::Protocol`] and
//! [`pp_protocol::EnumerableProtocol`], so the same engines, schedulers and
//! model checker apply to them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod approximate;
mod cancellation;
mod four_state;
mod undecided;

pub use approximate::{ApproximateMajority, TriState};
pub use cancellation::{CancellationPlurality, CancellationState};
pub use four_state::{FourState, FourStateMajority};
pub use undecided::{UndecidedDynamics, UndecidedState};
