//! Greedy pairwise cancellation for `k` colors.
//!
//! Token-bearing agents of *different* colors annihilate each other's tokens;
//! blank agents copy the color of any token they meet. For `k = 2` the token
//! difference per color pair is invariant, so the majority's tokens survive
//! and the protocol is always correct. For `k ≥ 3` it is **not** a plurality
//! protocol: cancellations between minority colors can leave a non-plurality
//! color with the last surviving tokens (e.g. counts 5/4/4 where the
//! plurality's tokens are spent against one minority while the other minority
//! survives). Experiment E6 measures how often this happens under the
//! uniform-random scheduler; the paper's Circles protocol exists precisely
//! because getting plurality right for general `k` is this subtle.

use circles_core::Color;
use pp_protocol::{EnumerableProtocol, Protocol};

/// An agent's state in the cancellation protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum CancellationState {
    /// Carries a token of its input color.
    Token(Color),
    /// Token spent; outputs the most recently seen token color.
    Blank(Color),
}

impl CancellationState {
    /// The color this agent currently reports.
    pub fn color(self) -> Color {
        match self {
            CancellationState::Token(c) | CancellationState::Blank(c) => c,
        }
    }

    /// Whether the agent still carries a token.
    pub fn has_token(self) -> bool {
        matches!(self, CancellationState::Token(_))
    }
}

/// The pairwise-cancellation protocol over `k` colors; see the
/// module-level documentation above for why it fails for `k >= 3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CancellationPlurality {
    k: u16,
}

impl CancellationPlurality {
    /// Creates the protocol for `k` colors.
    ///
    /// # Panics
    ///
    /// Panics when `k == 0`.
    pub fn new(k: u16) -> Self {
        assert!(k > 0, "k must be at least 1");
        CancellationPlurality { k }
    }

    /// The number of colors.
    pub fn k(&self) -> u16 {
        self.k
    }
}

impl Protocol for CancellationPlurality {
    type State = CancellationState;
    type Input = Color;
    type Output = Color;

    fn name(&self) -> &str {
        "cancellation"
    }

    /// # Panics
    ///
    /// Panics when the input color is `>= k`.
    fn input(&self, input: &Color) -> CancellationState {
        assert!(input.0 < self.k, "input color {input} out of range");
        CancellationState::Token(*input)
    }

    fn output(&self, state: &CancellationState) -> Color {
        state.color()
    }

    fn transition(
        &self,
        initiator: &CancellationState,
        responder: &CancellationState,
    ) -> (CancellationState, CancellationState) {
        use CancellationState::*;
        match (*initiator, *responder) {
            // Tokens of different colors annihilate; each remembers its own
            // color as its (stale) opinion.
            (Token(x), Token(y)) if x != y => (Blank(x), Blank(y)),
            // Blanks copy the color of a surviving token.
            (Token(x), Blank(y)) if x != y => (Token(x), Blank(x)),
            (Blank(y), Token(x)) if x != y => (Blank(x), Token(x)),
            other => other,
        }
    }

    fn is_symmetric(&self) -> bool {
        true
    }
}

impl EnumerableProtocol for CancellationPlurality {
    fn states(&self) -> Vec<CancellationState> {
        let mut out = Vec::with_capacity(2 * usize::from(self.k));
        for c in 0..self.k {
            out.push(CancellationState::Token(Color(c)));
        }
        for c in 0..self.k {
            out.push(CancellationState::Blank(Color(c)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pp_protocol::InteractionTrace;
    use pp_protocol::{Population, Simulation, UniformPairScheduler};
    use pp_schedulers::TraceScheduler;

    #[test]
    fn state_complexity_is_two_k() {
        assert_eq!(CancellationPlurality::new(4).state_complexity(), 8);
    }

    #[test]
    fn tokens_annihilate() {
        let p = CancellationPlurality::new(3);
        let (a, b) = p.transition(
            &CancellationState::Token(Color(0)),
            &CancellationState::Token(Color(2)),
        );
        assert_eq!(a, CancellationState::Blank(Color(0)));
        assert_eq!(b, CancellationState::Blank(Color(2)));
    }

    #[test]
    fn blanks_copy_tokens() {
        let p = CancellationPlurality::new(3);
        let (a, b) = p.transition(
            &CancellationState::Blank(Color(1)),
            &CancellationState::Token(Color(2)),
        );
        assert_eq!(a, CancellationState::Blank(Color(2)));
        assert_eq!(b, CancellationState::Token(Color(2)));
    }

    #[test]
    fn binary_case_is_correct() {
        let p = CancellationPlurality::new(2);
        let inputs: Vec<Color> = [0, 0, 0, 0, 1, 1, 1].map(Color).to_vec();
        let population = Population::from_inputs(&p, &inputs);
        let mut sim = Simulation::new(&p, population, UniformPairScheduler::new(), 2);
        let report = sim.run_until_silent(1_000_000, 8).unwrap();
        assert_eq!(report.consensus, Some(Color(0)));
    }

    #[test]
    fn adversarial_schedule_defeats_plurality_for_three_colors() {
        // Counts 3/2/2 over colors 0/1/2: color 0 is the strict plurality.
        // Agents: [0,0,0,1,1,2,2] (indices 0-6).
        // Schedule: spend all of color 0's tokens against color 1, then let
        // color 2 survive and convert everyone.
        let p = CancellationPlurality::new(3);
        let inputs: Vec<Color> = [0, 0, 0, 1, 1, 2, 2].map(Color).to_vec();
        let population = Population::from_inputs(&p, &inputs);
        let pairs = vec![
            (0, 3), // 0-token kills 1-token
            (1, 4), // 0-token kills 1-token
            (2, 5), // last 0-token killed by a 2-token
            // remaining token: agent 6 (color 2); convert all blanks:
            (6, 0),
            (6, 1),
            (6, 2),
            (6, 3),
            (6, 4),
            (6, 5),
        ];
        let trace = InteractionTrace::from_pairs(7, pairs).unwrap();
        let mut sim = Simulation::new(&p, population, TraceScheduler::new(trace), 0);
        for _ in 0..9 {
            let _ = sim.step().unwrap();
        }
        // The non-plurality color 2 won.
        assert_eq!(
            sim.population().output_consensus(&p),
            Some(Color(2)),
            "expected the adversarial schedule to elect color 2"
        );
    }

    #[test]
    fn all_tokens_spent_leaves_stale_outputs() {
        // Perfectly balanced k=2 input (a tie): every token can cancel, and
        // outputs stay split — the protocol stalls, like Circles does under
        // ties but without Circles' invariant structure.
        let p = CancellationPlurality::new(2);
        let inputs: Vec<Color> = [0, 1, 0, 1].map(Color).to_vec();
        let population = Population::from_inputs(&p, &inputs);
        let pairs = vec![(0, 1), (2, 3)];
        let trace = InteractionTrace::from_pairs(4, pairs).unwrap();
        let mut sim = Simulation::new(&p, population, TraceScheduler::new(trace), 0);
        for _ in 0..2 {
            let _ = sim.step().unwrap();
        }
        assert!(sim.population().iter().all(|s| !s.has_token()));
        assert_eq!(sim.population().output_consensus(&p), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn input_validated() {
        let _ = CancellationPlurality::new(1).input(&Color(1));
    }
}
