//! Crash-tolerant JSONL journal of per-trial sweep results.
//!
//! A [`SweepJournal`] is an append-only text file holding one JSON object
//! per line — one line per *settled* `(sweep_seed, trial_seed)` verdict.
//! Supervised sweeps ([`SupervisedRunner`](crate::trial::SupervisedRunner))
//! append each verdict the moment the trial settles and, on a later run
//! against the same file, skip every seed the journal already answers — so
//! a sweep killed at any point resumes where it left off instead of
//! recomputing completed trials.
//!
//! Crash tolerance comes from three properties:
//!
//! - **append-only, one `write(2)` per line**: a crash can tear at most the
//!   final line, never rewrite history;
//! - **lossy parsing**: [`SweepJournal::load_lossy`] skips unparsable lines
//!   (the torn tail) and reports how many it dropped, so a half-written
//!   record costs one recomputed trial, not the journal;
//! - **no external format dependencies**: the line codec
//!   ([`encode_entry`]/[`parse_entry`]) is a few dozen lines of this module,
//!   with the format version stamped into every line (`"v":1`) so future
//!   revisions can evolve it without ambiguity.
//!
//! Trial determinism (the counter-based `(sweep_seed, trial_seed)` streams,
//! see [`trial_rng`](crate::runner::trial_rng())) is what makes journal
//! resume *sound*: a journaled result is bit-identical to what re-running
//! the seed would produce, so skipping it changes nothing but time.

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use crate::trial::{TrialResult, TrialVerdict};

/// Journal line format version, stamped into every entry as `"v":1`.
/// Lines with any other version are skipped on load (forward compatibility:
/// an old binary never misreads a new journal).
pub const JOURNAL_VERSION: u64 = 1;

/// One settled `(sweep_seed, trial_seed)` verdict, as journaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalEntry {
    /// Sweep-level stream key the trial ran under.
    pub sweep_seed: u64,
    /// Trial seed within the sweep.
    pub trial_seed: u64,
    /// The recorded verdict.
    pub verdict: TrialVerdict,
}

/// Renders `entry` as its single JSON line (no trailing newline).
///
/// The layout is a flat object: `"v"`, `"sweep_seed"`, `"trial_seed"`,
/// `"status"`, then status-specific fields —
/// `completed` carries the five [`TrialResult`] numbers, `poisoned` carries
/// the panic `"message"` (JSON-escaped), `deadline_exceeded` carries the
/// attempt count.
pub fn encode_entry(entry: &JournalEntry) -> String {
    let mut line = format!(
        "{{\"v\":{JOURNAL_VERSION},\"sweep_seed\":{},\"trial_seed\":{},",
        entry.sweep_seed, entry.trial_seed
    );
    match &entry.verdict {
        TrialVerdict::Completed(r) => {
            line.push_str(&format!(
                "\"status\":\"completed\",\"steps_to_silence\":{},\
                 \"steps_to_consensus\":{},\"state_changes\":{},\
                 \"stabilized\":{},\"correct\":{}",
                r.steps_to_silence, r.steps_to_consensus, r.state_changes, r.stabilized, r.correct
            ));
        }
        TrialVerdict::Poisoned { message } => {
            line.push_str("\"status\":\"poisoned\",\"message\":\"");
            escape_into(&mut line, message);
            line.push('"');
        }
        TrialVerdict::DeadlineExceeded { attempts } => {
            line.push_str(&format!(
                "\"status\":\"deadline_exceeded\",\"attempts\":{attempts}"
            ));
        }
    }
    line.push('}');
    line
}

/// Parses one journal line back into its entry; `None` on any anomaly
/// (torn tail, foreign line, unknown version or status) — the caller skips
/// the line rather than failing the load.
pub fn parse_entry(line: &str) -> Option<JournalEntry> {
    let map = parse_object(line)?;
    let num = |k: &str| match map.get(k) {
        Some(Value::Num(n)) => Some(*n),
        _ => None,
    };
    let flag = |k: &str| match map.get(k) {
        Some(Value::Bool(b)) => Some(*b),
        _ => None,
    };
    let text = |k: &str| match map.get(k) {
        Some(Value::Str(s)) => Some(s.as_str()),
        _ => None,
    };
    if num("v")? != JOURNAL_VERSION {
        return None;
    }
    let verdict = match text("status")? {
        "completed" => TrialVerdict::Completed(TrialResult {
            steps_to_silence: num("steps_to_silence")?,
            steps_to_consensus: num("steps_to_consensus")?,
            state_changes: num("state_changes")?,
            stabilized: flag("stabilized")?,
            correct: flag("correct")?,
        }),
        "poisoned" => TrialVerdict::Poisoned {
            message: text("message")?.to_string(),
        },
        "deadline_exceeded" => TrialVerdict::DeadlineExceeded {
            attempts: u32::try_from(num("attempts")?).ok()?,
        },
        _ => return None,
    };
    Some(JournalEntry {
        sweep_seed: num("sweep_seed")?,
        trial_seed: num("trial_seed")?,
        verdict,
    })
}

/// A results journal at a fixed path; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct SweepJournal {
    path: PathBuf,
}

impl SweepJournal {
    /// A journal stored at `path` (created on first
    /// [`appender`](Self::appender)).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        SweepJournal { path: path.into() }
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Loads every parsable entry, in file order. A missing file is an
    /// empty journal, not an error; unparsable lines are silently skipped
    /// (use [`load_lossy`](Self::load_lossy) to count them).
    ///
    /// # Errors
    ///
    /// Any I/O failure other than "file not found".
    pub fn load(&self) -> io::Result<Vec<JournalEntry>> {
        self.load_lossy().map(|(entries, _)| entries)
    }

    /// [`load`](Self::load), also returning how many lines failed to parse
    /// — the torn tail of a crashed writer, or foreign/garbage lines.
    ///
    /// # Errors
    ///
    /// Any I/O failure other than "file not found".
    pub fn load_lossy(&self) -> io::Result<(Vec<JournalEntry>, usize)> {
        let text = match std::fs::read_to_string(&self.path) {
            Ok(text) => text,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e),
        };
        let mut entries = Vec::new();
        let mut skipped = 0;
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            match parse_entry(line) {
                Some(entry) => entries.push(entry),
                None => skipped += 1,
            }
        }
        Ok((entries, skipped))
    }

    /// The *final* verdicts journaled for `sweep_seed`, keyed by trial
    /// seed — what a resuming sweep skips. Completed and poisoned verdicts
    /// are final (both are deterministic in the seed); a
    /// [`DeadlineExceeded`](TrialVerdict::DeadlineExceeded) give-up is
    /// *transient* — it reflects machine load, not the trial — so it
    /// un-settles the seed and the resumed sweep retries it with a fresh
    /// clock. Later lines win when a seed appears twice.
    ///
    /// Skipped (unparsable) lines are reported to stderr.
    ///
    /// # Errors
    ///
    /// Any I/O failure other than "file not found".
    pub fn settled_for(&self, sweep_seed: u64) -> io::Result<BTreeMap<u64, TrialVerdict>> {
        let (entries, skipped) = self.load_lossy()?;
        if skipped > 0 {
            eprintln!(
                "results journal: skipped {skipped} unparsable line(s) in {} \
                 (torn tail from a crash?)",
                self.path.display()
            );
        }
        let mut settled = BTreeMap::new();
        for entry in entries {
            if entry.sweep_seed != sweep_seed {
                continue;
            }
            if matches!(entry.verdict, TrialVerdict::DeadlineExceeded { .. }) {
                settled.remove(&entry.trial_seed);
            } else {
                settled.insert(entry.trial_seed, entry.verdict);
            }
        }
        Ok(settled)
    }

    /// Opens the journal for appending (creating parent directories and the
    /// file as needed). The appender is shared across worker threads; each
    /// entry lands as one `write(2)` of a full line, so concurrent appends
    /// interleave at line granularity and a crash tears at most the final
    /// line.
    ///
    /// # Errors
    ///
    /// Any I/O failure creating or opening the file.
    pub fn appender(&self) -> io::Result<JournalAppender> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        Ok(JournalAppender {
            file: Mutex::new(file),
        })
    }
}

/// A shared, thread-safe append handle; see [`SweepJournal::appender`].
#[derive(Debug)]
pub struct JournalAppender {
    file: Mutex<File>,
}

impl JournalAppender {
    /// Appends one entry as a single line-plus-newline write.
    ///
    /// # Errors
    ///
    /// Any I/O failure writing the line.
    pub fn append(&self, entry: &JournalEntry) -> io::Result<()> {
        let mut line = encode_entry(entry);
        line.push('\n');
        let mut file = self.file.lock().expect("journal lock poisoned");
        file.write_all(line.as_bytes())?;
        file.flush()
    }
}

/// JSON-escapes `s` into `out`: quote, backslash, and the C0 controls (the
/// common three named, the rest as `\u00XX`). Everything else — including
/// non-ASCII — passes through verbatim (JSON strings are UTF-8).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// A parsed scalar field value: the only shapes journal lines contain.
enum Value {
    Num(u64),
    Bool(bool),
    Str(String),
}

/// Parses a single flat JSON object of scalar fields. Any deviation —
/// nesting, duplicate keys, trailing bytes, malformed escapes — yields
/// `None`; the journal loader treats such lines as torn and skips them.
fn parse_object(line: &str) -> Option<BTreeMap<String, Value>> {
    let mut sc = Scan::new(line.trim());
    sc.eat('{')?;
    let mut map = BTreeMap::new();
    sc.skip_ws();
    if sc.eat('}').is_some() {
        return sc.at_end().then_some(map);
    }
    loop {
        sc.skip_ws();
        let key = sc.string()?;
        sc.skip_ws();
        sc.eat(':')?;
        sc.skip_ws();
        let value = sc.value()?;
        if map.insert(key, value).is_some() {
            return None;
        }
        sc.skip_ws();
        match sc.bump()? {
            ',' => continue,
            '}' => break,
            _ => return None,
        }
    }
    sc.at_end().then_some(map)
}

/// Minimal character scanner behind [`parse_object`].
struct Scan<'a> {
    s: &'a str,
    i: usize,
}

impl<'a> Scan<'a> {
    fn new(s: &'a str) -> Self {
        Scan { s, i: 0 }
    }

    fn rest(&self) -> &'a str {
        &self.s[self.i..]
    }

    fn at_end(&self) -> bool {
        self.i == self.s.len()
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.i += c.len_utf8();
        Some(c)
    }

    fn eat(&mut self, want: char) -> Option<()> {
        if self.peek()? == want {
            self.bump();
            Some(())
        } else {
            None
        }
    }

    fn skip_ws(&mut self) {
        while self.peek().is_some_and(|c| c == ' ' || c == '\t') {
            self.bump();
        }
    }

    fn keyword(&mut self, word: &str) -> Option<()> {
        if self.rest().starts_with(word) {
            self.i += word.len();
            Some(())
        } else {
            None
        }
    }

    fn string(&mut self) -> Option<String> {
        self.eat('"')?;
        let mut out = String::new();
        loop {
            match self.bump()? {
                '"' => return Some(out),
                '\\' => match self.bump()? {
                    '"' => out.push('"'),
                    '\\' => out.push('\\'),
                    '/' => out.push('/'),
                    'n' => out.push('\n'),
                    'r' => out.push('\r'),
                    't' => out.push('\t'),
                    'b' => out.push('\u{8}'),
                    'f' => out.push('\u{c}'),
                    'u' => {
                        let mut v: u32 = 0;
                        for _ in 0..4 {
                            v = v * 16 + self.bump()?.to_digit(16)?;
                        }
                        out.push(char::from_u32(v)?);
                    }
                    _ => return None,
                },
                c if (c as u32) < 0x20 => return None,
                c => out.push(c),
            }
        }
    }

    fn number(&mut self) -> Option<u64> {
        let start = self.i;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        if self.i == start {
            return None;
        }
        self.s[start..self.i].parse().ok()
    }

    fn value(&mut self) -> Option<Value> {
        match self.peek()? {
            '"' => self.string().map(Value::Str),
            't' => self.keyword("true").map(|()| Value::Bool(true)),
            'f' => self.keyword("false").map(|()| Value::Bool(false)),
            c if c.is_ascii_digit() => self.number().map(Value::Num),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pp-journal-{tag}-{}.jsonl", std::process::id()))
    }

    fn sample_entries() -> Vec<JournalEntry> {
        vec![
            JournalEntry {
                sweep_seed: 7,
                trial_seed: 0,
                verdict: TrialVerdict::Completed(TrialResult {
                    steps_to_silence: 1234,
                    steps_to_consensus: 1200,
                    state_changes: 99,
                    stabilized: true,
                    correct: true,
                }),
            },
            JournalEntry {
                sweep_seed: 7,
                trial_seed: 1,
                verdict: TrialVerdict::Poisoned {
                    message: "index out of bounds: \"len\" is 3\nbacktrace\ttab".to_string(),
                },
            },
            JournalEntry {
                sweep_seed: 7,
                trial_seed: 2,
                verdict: TrialVerdict::DeadlineExceeded { attempts: 3 },
            },
        ]
    }

    #[test]
    fn entries_round_trip_through_the_line_codec() {
        for entry in sample_entries() {
            let line = encode_entry(&entry);
            assert!(!line.contains('\n'), "a journal line must be one line");
            let back = parse_entry(&line).expect("codec round trip");
            assert_eq!(back, entry);
        }
    }

    #[test]
    fn foreign_and_torn_lines_are_rejected_not_panicked() {
        let bad = [
            "",
            "{",
            "}",
            "{}",
            "not json at all",
            "{\"v\":1,\"sweep_seed\":7",
            "{\"v\":2,\"sweep_seed\":7,\"trial_seed\":0,\"status\":\"completed\"}",
            "{\"v\":1,\"sweep_seed\":7,\"trial_seed\":0,\"status\":\"unknown\"}",
            "{\"v\":1,\"sweep_seed\":7,\"trial_seed\":0,\"status\":\"poisoned\",\"message\":\"unterminated",
            "{\"v\":1,\"v\":1}",
            "{\"v\":1,\"sweep_seed\":7,\"trial_seed\":0,\"status\":\"completed\",\"steps_to_silence\":1,\"steps_to_consensus\":1,\"state_changes\":1,\"stabilized\":true,\"correct\":true} trailing",
        ];
        for line in bad {
            assert!(parse_entry(line).is_none(), "accepted: {line:?}");
        }
        // Truncating a valid line anywhere must also be rejected.
        let full = encode_entry(&sample_entries()[1]);
        for cut in 0..full.len() {
            if full.is_char_boundary(cut) {
                assert!(parse_entry(&full[..cut]).is_none(), "accepted prefix {cut}");
            }
        }
    }

    #[test]
    fn journal_survives_a_torn_tail() {
        let path = temp_path("torn");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::new(&path);
        let entries = sample_entries();
        let appender = journal.appender().unwrap();
        for entry in &entries {
            appender.append(entry).unwrap();
        }
        // Simulate a crash mid-write: a half line at the end of the file.
        let mut text = std::fs::read_to_string(&path).unwrap();
        text.push_str("{\"v\":1,\"sweep_seed\":7,\"trial_seed\":3,\"sta");
        std::fs::write(&path, &text).unwrap();

        let (loaded, skipped) = journal.load_lossy().unwrap();
        assert_eq!(loaded, entries);
        assert_eq!(skipped, 1, "exactly the torn tail is dropped");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn settled_verdicts_skip_deadline_give_ups_and_other_sweeps() {
        let path = temp_path("settled");
        let _ = std::fs::remove_file(&path);
        let journal = SweepJournal::new(&path);
        let appender = journal.appender().unwrap();
        for entry in sample_entries() {
            appender.append(&entry).unwrap();
        }
        // An entry from another sweep must not leak in.
        appender
            .append(&JournalEntry {
                sweep_seed: 8,
                trial_seed: 5,
                verdict: TrialVerdict::DeadlineExceeded { attempts: 1 },
            })
            .unwrap();
        let settled = journal.settled_for(7).unwrap();
        assert_eq!(
            settled.keys().copied().collect::<Vec<_>>(),
            vec![0, 1],
            "completed + poisoned settle; the deadline give-up retries"
        );
        assert!(journal.settled_for(9).unwrap().is_empty());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_journal_is_empty_not_an_error() {
        let journal = SweepJournal::new(temp_path("never-created-nope"));
        assert!(journal.load().unwrap().is_empty());
        assert!(journal.settled_for(0).unwrap().is_empty());
    }
}
