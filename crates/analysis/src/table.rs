//! Minimal table rendering: Markdown for humans, CSV for tooling.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// A rectangular results table with a title and column headers.
///
/// # Example
///
/// ```
/// use pp_analysis::Table;
///
/// let mut table = Table::new("E0 demo", &["k", "states"]);
/// table.push_row(vec!["2".into(), "8".into()]);
/// let md = table.to_markdown();
/// assert!(md.contains("| k | states |"));
/// assert!(table.to_csv().starts_with("k,states"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The rows pushed so far.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// The column headers.
    pub fn headers(&self) -> &[String] {
        &self.headers
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width {} != header width {}",
            row.len(),
            self.headers.len()
        );
        self.rows.push(row);
    }

    /// Renders GitHub-flavored Markdown with a `## title` heading.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "## {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders RFC-4180-flavored CSV (fields containing commas, quotes or
    /// newlines are quoted).
    pub fn to_csv(&self) -> String {
        let escape = |field: &str| -> String {
            if field.contains([',', '"', '\n']) {
                format!("\"{}\"", field.replace('"', "\"\""))
            } else {
                field.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|f| escape(f)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes `<dir>/<basename>.md` and `<dir>/<basename>.csv`, creating
    /// `dir` if needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_files(&self, dir: &Path, basename: &str) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(format!("{basename}.md")), self.to_markdown())?;
        fs::write(dir.join(format!("{basename}.csv")), self.to_csv())?;
        Ok(())
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt_f64(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1000.0 {
        format!("{x:.0}")
    } else if x.abs() >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.3}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("## demo"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["x,y".into(), "quote\"inside".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"quote\"\"inside\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }

    #[test]
    fn write_files_round_trip() {
        let dir = std::env::temp_dir().join("pp-analysis-table-test");
        let mut t = Table::new("demo", &["a"]);
        t.push_row(vec!["1".into()]);
        t.write_files(&dir, "t").unwrap();
        let md = std::fs::read_to_string(dir.join("t.md")).unwrap();
        assert!(md.contains("## demo"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_f64(0.0), "0");
        assert_eq!(fmt_f64(1.23456), "1.235");
        assert_eq!(fmt_f64(42.42), "42.4");
        assert_eq!(fmt_f64(12345.6), "12346");
    }
}
