//! Seed-parallel trial execution.
//!
//! Experiments repeat each configuration over many RNG seeds; trials are
//! independent, so they parallelize trivially. `std::thread::scope` keeps
//! the dependency footprint at zero.

use std::sync::atomic::{AtomicUsize, Ordering};

use rand::rngs::Philox4x32;

/// The counter-based RNG stream of one trial, keyed `(sweep_seed,
/// trial_seed)`.
///
/// Philox streams are pure functions of the key pair: the stream a trial
/// consumes depends only on which trial it *is*, never on the thread that
/// runs it, the order trials are scheduled in, or what ran before it in the
/// process. Every `TrialResult`-producing entry point in this crate derives
/// its generator here, which is what makes "seed 7 at `k = 30`, `n = 10^6`"
/// name exactly one trajectory.
pub fn trial_rng(sweep_seed: u64, trial_seed: u64) -> Philox4x32 {
    Philox4x32::stream(sweep_seed, trial_seed)
}

/// The counter-based RNG stream of one trial's *hazard schedule*, keyed
/// `(sweep_seed, trial_seed)` and disjoint from [`trial_rng`].
///
/// Fault and hazard experiments need two generators per trial: one driving
/// the scheduler and one driving the perturbations, so that changing the
/// hazard plan (e.g. sweeping fault counts) never shifts the scheduler's
/// draws and vice versa. The hazard stream sets the top bit of the stream
/// id; trial seeds are small integers (`seed_range`), so the two stream
/// families can never collide.
pub fn hazard_rng(sweep_seed: u64, trial_seed: u64) -> Philox4x32 {
    Philox4x32::stream(sweep_seed, trial_seed | 1 << 63)
}

/// Runs `f(seed)` for every seed, in parallel across up to `threads` OS
/// threads, and returns results in seed order.
///
/// # Example
///
/// ```
/// use pp_analysis::runner::run_seeded;
///
/// let squares = run_seeded(&[1, 2, 3, 4], 2, |seed| seed * seed);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
///
/// # Panics
///
/// Panics if `threads == 0` or if any worker panics (the panic is
/// propagated).
pub fn run_seeded<T, F>(seeds: &[u64], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    assert!(threads > 0, "need at least one thread");
    let mut results: Vec<Option<T>> = Vec::new();
    results.resize_with(seeds.len(), || None);
    if seeds.is_empty() {
        return Vec::new();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<&mut Option<T>>> =
        results.iter_mut().map(std::sync::Mutex::new).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads.min(seeds.len()) {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= seeds.len() {
                    break;
                }
                let value = f(seeds[i]);
                **slots[i].lock().expect("result slot poisoned") = Some(value);
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker skipped a seed"))
        .collect()
}

/// The default parallelism for experiment binaries: the number of available
/// CPUs (at least 1).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// A convenient seed list `0..count`.
pub fn seed_range(count: u64) -> Vec<u64> {
    (0..count).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_seed_order() {
        let out = run_seeded(&[10, 20, 30], 3, |s| s + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn single_thread_works() {
        let out = run_seeded(&[1, 2], 1, |s| s);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn more_threads_than_seeds() {
        let out = run_seeded(&[5], 16, |s| s * 2);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn empty_seed_list() {
        let out: Vec<u64> = run_seeded(&[], 4, |s| s);
        assert!(out.is_empty());
    }

    #[test]
    fn heavy_closure_parallelizes_without_corruption() {
        let seeds = seed_range(64);
        let out = run_seeded(&seeds, 8, |s| {
            // Busy-ish work with a deterministic result.
            (0..1000u64).fold(s, |acc, i| acc.wrapping_mul(31).wrapping_add(i))
        });
        let serial: Vec<u64> = seeds
            .iter()
            .map(|&s| (0..1000u64).fold(s, |acc, i| acc.wrapping_mul(31).wrapping_add(i)))
            .collect();
        assert_eq!(out, serial);
    }

    #[test]
    fn default_threads_positive() {
        assert!(default_threads() >= 1);
    }
}
