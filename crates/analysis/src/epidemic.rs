//! Exact expectations for epidemic spreading under uniform pairing.
//!
//! After stabilization (Theorem 3.4), Circles' endgame is a pure *epidemic*:
//! the `⟨μ|μ⟩` agent's output spreads to everyone it (transitively) meets.
//! Under the uniform-random scheduler this process has a closed-form
//! expected duration, which experiment E17 compares against the measured
//! output-propagation tail of real Circles runs.
//!
//! With `i` informed agents out of `n`, one uniformly random ordered pair
//! informs someone new with probability
//!
//! - `2·i·(n−i) / (n(n−1))` when either participant can transmit
//!   (*two-way*, the relevant mode for Circles' rule 2, which fires for
//!   both orientations), or
//! - `i·(n−i) / (n(n−1))` when only the initiator transmits (*one-way*).
//!
//! Summing geometric waiting times telescopes into harmonic numbers:
//! starting from one informed agent,
//!
//! ```text
//! E[steps, two-way] = (n−1)·H_{n−1}          H_m = Σ_{j=1}^{m} 1/j
//! E[steps, one-way] = 2·(n−1)·H_{n−1}
//! ```

/// Transmission mode of an epidemic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transmission {
    /// Either participant of an interaction informs the other.
    TwoWay,
    /// Only the initiator informs the responder.
    OneWay,
}

/// The harmonic number `H_m = Σ_{j=1}^{m} 1/j` (`H_0 = 0`).
pub fn harmonic(m: u64) -> f64 {
    (1..=m).map(|j| 1.0 / j as f64).sum()
}

/// Exact expected number of interactions for an epidemic to reach all `n`
/// agents starting from `i0` informed ones.
///
/// # Panics
///
/// Panics when `i0 == 0` (nothing ever spreads) or `i0 > n` or `n < 2`.
pub fn expected_epidemic_interactions(n: u64, i0: u64, mode: Transmission) -> f64 {
    assert!(n >= 2, "an epidemic needs at least two agents");
    assert!(i0 >= 1, "an epidemic needs at least one informed agent");
    assert!(i0 <= n, "more informed agents than agents");
    let factor = match mode {
        Transmission::TwoWay => 1.0,
        Transmission::OneWay => 2.0,
    };
    // Σ_{i=i0}^{n-1} n(n−1) / (2 i (n−i)), with 1/(i(n−i)) split into
    // harmonic tails; the direct sum is exact and O(n), which is plenty.
    let mut acc = 0.0;
    for i in i0..n {
        acc += n as f64 * (n - 1) as f64 / (2.0 * i as f64 * (n - i) as f64);
    }
    factor * acc
}

/// [`expected_epidemic_interactions`] in parallel-time units (divided by
/// `n`).
pub fn expected_epidemic_parallel_time(n: u64, i0: u64, mode: Transmission) -> f64 {
    expected_epidemic_interactions(n, i0, mode) / n as f64
}

/// Exact expected interactions for a *source-only* epidemic: `sources`
/// fixed transmitters, `uninformed` receivers, and **no** transitive spread
/// — an agent learns only by meeting a source directly.
///
/// This is the exact model of Circles' output tail: after stabilization the
/// only transmitters are the `⟨μ|μ⟩` agents (whose number equals the
/// winner's margin — one per singleton greedy set `G_p = {μ}`), because
/// rule 2 copies outputs *from self-loop agents only*; a converted agent
/// does not itself convert others. With `j` uninformed agents left, the
/// probability that a uniform ordered pair informs someone is
/// `2·sources·j / (n(n−1))`, so
///
/// ```text
/// E[steps] = n(n−1)·H_{uninformed} / (2·sources)
/// ```
///
/// # Panics
///
/// Panics when `sources == 0` (with uninformed agents left, nothing ever
/// spreads), or when `sources + uninformed > n`, or `n < 2`.
pub fn expected_source_epidemic_interactions(n: u64, sources: u64, uninformed: u64) -> f64 {
    assert!(n >= 2, "an epidemic needs at least two agents");
    assert!(
        sources + uninformed <= n,
        "sources + uninformed exceed the population"
    );
    if uninformed == 0 {
        return 0.0;
    }
    assert!(sources >= 1, "a source epidemic needs at least one source");
    n as f64 * (n - 1) as f64 * harmonic(uninformed) / (2.0 * sources as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn two_way_matches_harmonic_closed_form() {
        // From one informed agent: E = (n−1)·H_{n−1}.
        for n in 2..=200u64 {
            let direct = expected_epidemic_interactions(n, 1, Transmission::TwoWay);
            let closed = (n - 1) as f64 * harmonic(n - 1);
            assert!(
                (direct - closed).abs() < 1e-8 * closed.max(1.0),
                "n={n}: {direct} vs {closed}"
            );
        }
    }

    #[test]
    fn one_way_is_twice_two_way() {
        for n in [2u64, 5, 32, 100] {
            let one = expected_epidemic_interactions(n, 1, Transmission::OneWay);
            let two = expected_epidemic_interactions(n, 1, Transmission::TwoWay);
            assert!((one - 2.0 * two).abs() < 1e-9);
        }
    }

    #[test]
    fn n_two_base_case() {
        // One informed of two: success probability 1 (two-way), 1/2 (one-way).
        assert!((expected_epidemic_interactions(2, 1, Transmission::TwoWay) - 1.0).abs() < 1e-12);
        assert!((expected_epidemic_interactions(2, 1, Transmission::OneWay) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn fully_informed_needs_zero_steps() {
        assert_eq!(
            expected_epidemic_interactions(7, 7, Transmission::TwoWay),
            0.0
        );
    }

    #[test]
    fn more_informed_is_faster() {
        let from_one = expected_epidemic_interactions(64, 1, Transmission::TwoWay);
        let from_half = expected_epidemic_interactions(64, 32, Transmission::TwoWay);
        assert!(from_half < from_one);
    }

    #[test]
    fn parallel_time_is_interactions_over_n() {
        let n = 50;
        let steps = expected_epidemic_interactions(n, 1, Transmission::TwoWay);
        let t = expected_epidemic_parallel_time(n, 1, Transmission::TwoWay);
        assert!((t - steps / n as f64).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one informed")]
    fn zero_informed_panics() {
        let _ = expected_epidemic_interactions(5, 0, Transmission::TwoWay);
    }

    #[test]
    fn source_epidemic_closed_form() {
        // n=4, 1 source, 2 uninformed: E = 4·3·(1 + 1/2)/2 = 9.
        let e = expected_source_epidemic_interactions(4, 1, 2);
        assert!((e - 9.0).abs() < 1e-12);
        // Doubling the sources halves the time.
        let e2 = expected_source_epidemic_interactions(4, 2, 2);
        assert!((e2 - 4.5).abs() < 1e-12);
    }

    #[test]
    fn source_epidemic_with_no_uninformed_is_zero() {
        assert_eq!(expected_source_epidemic_interactions(8, 0, 0), 0.0);
        assert_eq!(expected_source_epidemic_interactions(8, 3, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one source")]
    fn source_epidemic_needs_a_source() {
        let _ = expected_source_epidemic_interactions(8, 0, 3);
    }

    #[test]
    fn source_epidemic_is_slower_than_transitive() {
        // Without transitive spread the tail is much longer than a full
        // epidemic from the same start.
        let source = expected_source_epidemic_interactions(64, 1, 63);
        let full = expected_epidemic_interactions(64, 1, Transmission::TwoWay);
        assert!(source > 2.0 * full);
    }

    #[test]
    fn growth_is_n_log_n_shaped() {
        // E(2n)/E(n) → slightly above 2 (the log factor): sanity-check the
        // asymptotic shape that E17 plots.
        let e1 = expected_epidemic_interactions(512, 1, Transmission::TwoWay);
        let e2 = expected_epidemic_interactions(1024, 1, Transmission::TwoWay);
        let ratio = e2 / e1;
        assert!(
            ratio > 2.0 && ratio < 2.5,
            "ratio {ratio} not n·log n shaped"
        );
    }
}
