//! Dependency-free SVG line charts for the experiment figures.
//!
//! Every experiment writes tables (CSV + Markdown); the figure-shaped ones
//! (scaling curves, density trajectories, descent traces) additionally
//! render an SVG under `results/`. The writer is deliberately small: linear
//! or log₁₀ axes, nice-number ticks, a qualitative palette, and a legend —
//! enough to eyeball the *shape* claims (who wins, what the slope is, where
//! crossovers fall) without pulling in a plotting stack.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

/// One named line series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    label: String,
    points: Vec<(f64, f64)>,
}

impl Series {
    /// Creates a series from `(x, y)` points.
    pub fn new(label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            label: label.into(),
            points,
        }
    }

    /// The series label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The data points.
    pub fn points(&self) -> &[(f64, f64)] {
        &self.points
    }
}

/// A line chart under construction (consuming builder).
///
/// # Example
///
/// ```
/// use pp_analysis::plot::LinePlot;
///
/// let svg = LinePlot::new("state complexity")
///     .axis_labels("k", "states")
///     .log_x()
///     .log_y()
///     .with_series("k^3", (2..=32).map(|k| (k as f64, (k as f64).powi(3))).collect())
///     .to_svg();
/// assert!(svg.starts_with("<svg"));
/// assert!(svg.contains("state complexity"));
/// ```
#[derive(Debug, Clone)]
pub struct LinePlot {
    title: String,
    x_label: String,
    y_label: String,
    log_x: bool,
    log_y: bool,
    width: f64,
    height: f64,
    series: Vec<Series>,
}

const MARGIN_LEFT: f64 = 74.0;
const MARGIN_RIGHT: f64 = 18.0;
const MARGIN_TOP: f64 = 38.0;
const MARGIN_BOTTOM: f64 = 56.0;
const PALETTE: [&str; 8] = [
    "#1f77b4", "#d62728", "#2ca02c", "#9467bd", "#ff7f0e", "#8c564b", "#17becf", "#7f7f7f",
];

impl LinePlot {
    /// Starts a chart with the given title.
    pub fn new(title: impl Into<String>) -> Self {
        LinePlot {
            title: title.into(),
            x_label: String::new(),
            y_label: String::new(),
            log_x: false,
            log_y: false,
            width: 640.0,
            height: 420.0,
            series: Vec::new(),
        }
    }

    /// Sets the axis labels.
    pub fn axis_labels(mut self, x: impl Into<String>, y: impl Into<String>) -> Self {
        self.x_label = x.into();
        self.y_label = y.into();
        self
    }

    /// Uses a log₁₀ x-axis. Points with `x ≤ 0` are dropped (they have no
    /// finite log coordinate).
    pub fn log_x(mut self) -> Self {
        self.log_x = true;
        self
    }

    /// Uses a log₁₀ y-axis. Points with `y ≤ 0` are dropped.
    pub fn log_y(mut self) -> Self {
        self.log_y = true;
        self
    }

    /// Overrides the canvas size (default 640 × 420).
    pub fn size(mut self, width: u32, height: u32) -> Self {
        self.width = f64::from(width.max(200));
        self.height = f64::from(height.max(150));
        self
    }

    /// Adds a series.
    pub fn with_series(mut self, label: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        self.series.push(Series::new(label, points));
        self
    }

    /// Points of `series` that survive the log-axis domain filters, mapped
    /// to plot coordinates (log₁₀ applied where requested).
    fn visible_points(&self, series: &Series) -> Vec<(f64, f64)> {
        series
            .points
            .iter()
            .filter(|(x, y)| {
                x.is_finite()
                    && y.is_finite()
                    && (!self.log_x || *x > 0.0)
                    && (!self.log_y || *y > 0.0)
            })
            .map(|&(x, y)| {
                (
                    if self.log_x { x.log10() } else { x },
                    if self.log_y { y.log10() } else { y },
                )
            })
            .collect()
    }

    /// Renders the chart.
    pub fn to_svg(&self) -> String {
        let all: Vec<Vec<(f64, f64)>> =
            self.series.iter().map(|s| self.visible_points(s)).collect();
        let flat: Vec<(f64, f64)> = all.iter().flatten().copied().collect();
        let (x_min, x_max) = padded_bounds(flat.iter().map(|p| p.0));
        let (y_min, y_max) = padded_bounds(flat.iter().map(|p| p.1));

        let plot_w = self.width - MARGIN_LEFT - MARGIN_RIGHT;
        let plot_h = self.height - MARGIN_TOP - MARGIN_BOTTOM;
        let sx = move |x: f64| MARGIN_LEFT + (x - x_min) / (x_max - x_min) * plot_w;
        let sy = move |y: f64| MARGIN_TOP + plot_h - (y - y_min) / (y_max - y_min) * plot_h;

        let mut svg = String::with_capacity(8 * 1024);
        let _ = write!(
            svg,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" viewBox="0 0 {w} {h}" font-family="Helvetica,Arial,sans-serif">"#,
            w = self.width,
            h = self.height
        );
        let _ = write!(
            svg,
            r#"<rect width="{}" height="{}" fill="white"/>"#,
            self.width, self.height
        );

        // Title.
        let _ = write!(
            svg,
            r#"<text x="{}" y="22" text-anchor="middle" font-size="15" font-weight="bold">{}</text>"#,
            self.width / 2.0,
            escape(&self.title)
        );

        // Grid + ticks.
        for t in ticks(x_min, x_max, self.log_x) {
            let px = sx(t);
            let _ = write!(
                svg,
                r##"<line x1="{px:.1}" y1="{}" x2="{px:.1}" y2="{}" stroke="#dddddd" stroke-width="1"/>"##,
                MARGIN_TOP,
                MARGIN_TOP + plot_h
            );
            let _ = write!(
                svg,
                r#"<text x="{px:.1}" y="{}" text-anchor="middle" font-size="11">{}</text>"#,
                MARGIN_TOP + plot_h + 16.0,
                tick_label(t, self.log_x)
            );
        }
        for t in ticks(y_min, y_max, self.log_y) {
            let py = sy(t);
            let _ = write!(
                svg,
                r##"<line x1="{}" y1="{py:.1}" x2="{}" y2="{py:.1}" stroke="#dddddd" stroke-width="1"/>"##,
                MARGIN_LEFT,
                MARGIN_LEFT + plot_w
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{:.1}" text-anchor="end" font-size="11">{}</text>"#,
                MARGIN_LEFT - 6.0,
                py + 4.0,
                tick_label(t, self.log_y)
            );
        }

        // Axes.
        let _ = write!(
            svg,
            r#"<rect x="{}" y="{}" width="{plot_w:.1}" height="{plot_h:.1}" fill="none" stroke="black" stroke-width="1"/>"#,
            MARGIN_LEFT, MARGIN_TOP
        );
        let _ = write!(
            svg,
            r#"<text x="{}" y="{}" text-anchor="middle" font-size="12">{}</text>"#,
            MARGIN_LEFT + plot_w / 2.0,
            self.height - 14.0,
            escape(&self.x_label)
        );
        let _ = write!(
            svg,
            r#"<text x="16" y="{}" text-anchor="middle" font-size="12" transform="rotate(-90 16 {})">{}</text>"#,
            MARGIN_TOP + plot_h / 2.0,
            MARGIN_TOP + plot_h / 2.0,
            escape(&self.y_label)
        );

        // Series.
        for (idx, points) in all.iter().enumerate() {
            let color = PALETTE[idx % PALETTE.len()];
            if points.len() > 1 {
                let path: Vec<String> = points
                    .iter()
                    .map(|&(x, y)| format!("{:.1},{:.1}", sx(x), sy(y)))
                    .collect();
                let _ = write!(
                    svg,
                    r#"<polyline points="{}" fill="none" stroke="{color}" stroke-width="1.8"/>"#,
                    path.join(" ")
                );
            }
            for &(x, y) in points {
                let _ = write!(
                    svg,
                    r#"<circle cx="{:.1}" cy="{:.1}" r="2.4" fill="{color}"/>"#,
                    sx(x),
                    sy(y)
                );
            }
        }

        // Legend (top-left corner of the plot area).
        for (idx, series) in self.series.iter().enumerate() {
            let color = PALETTE[idx % PALETTE.len()];
            let ly = MARGIN_TOP + 14.0 + idx as f64 * 16.0;
            let _ = write!(
                svg,
                r#"<line x1="{}" y1="{ly:.1}" x2="{}" y2="{ly:.1}" stroke="{color}" stroke-width="2.5"/>"#,
                MARGIN_LEFT + 8.0,
                MARGIN_LEFT + 30.0
            );
            let _ = write!(
                svg,
                r#"<text x="{}" y="{:.1}" font-size="11">{}</text>"#,
                MARGIN_LEFT + 35.0,
                ly + 4.0,
                escape(series.label())
            );
        }

        svg.push_str("</svg>");
        svg
    }

    /// Renders and writes the chart to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write(&self, path: &Path) -> io::Result<()> {
        fs::write(path, self.to_svg())
    }
}

/// 5%-padded bounds, with degenerate and empty ranges widened to unit size.
fn padded_bounds(values: impl Iterator<Item = f64>) -> (f64, f64) {
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for v in values {
        min = min.min(v);
        max = max.max(v);
    }
    if !min.is_finite() || !max.is_finite() {
        return (0.0, 1.0); // no visible data
    }
    if min == max {
        return (min - 0.5, max + 0.5);
    }
    let pad = (max - min) * 0.05;
    (min - pad, max + pad)
}

/// Tick positions in *plot* coordinates. For log axes the coordinates are
/// already log₁₀, so integer positions are decades.
fn ticks(min: f64, max: f64, log: bool) -> Vec<f64> {
    if log {
        let lo = min.ceil() as i64;
        let hi = max.floor() as i64;
        if lo <= hi && (hi - lo) <= 24 {
            return (lo..=hi).map(|d| d as f64).collect();
        }
    }
    // Nice-number linear ticks, ~5 intervals.
    let span = max - min;
    let raw = span / 5.0;
    let mag = 10f64.powf(raw.log10().floor());
    let norm = raw / mag;
    let nice = if norm < 1.5 {
        1.0
    } else if norm < 3.0 {
        2.0
    } else if norm < 7.0 {
        5.0
    } else {
        10.0
    } * mag;
    let start = (min / nice).ceil() as i64;
    let end = (max / nice).floor() as i64;
    (start..=end).map(|i| i as f64 * nice).collect()
}

fn tick_label(t: f64, log: bool) -> String {
    if log {
        let v = 10f64.powf(t);
        return compact(v);
    }
    compact(t)
}

/// Compact numeric label: integers plain, large values with exponents.
fn compact(v: f64) -> String {
    let a = v.abs();
    if a >= 1e5 || (a > 0.0 && a < 1e-3) {
        format!("{v:.0e}")
    } else if (v - v.round()).abs() < 1e-9 {
        format!("{}", v.round() as i64)
    } else {
        format!("{v:.3}")
            .trim_end_matches('0')
            .trim_end_matches('.')
            .to_string()
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn basic_plot() -> LinePlot {
        LinePlot::new("demo")
            .axis_labels("x", "y")
            .with_series("linear", vec![(1.0, 1.0), (2.0, 2.0), (3.0, 3.0)])
            .with_series("square", vec![(1.0, 1.0), (2.0, 4.0), (3.0, 9.0)])
    }

    #[test]
    fn svg_has_expected_structure() {
        let svg = basic_plot().to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>"));
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert_eq!(svg.matches("<circle").count(), 6);
        assert!(svg.contains(">demo<"));
        assert!(svg.contains(">linear<"));
        assert!(svg.contains(">square<"));
    }

    #[test]
    fn log_axes_drop_nonpositive_points() {
        let svg = LinePlot::new("log")
            .log_x()
            .log_y()
            .with_series(
                "s",
                vec![(0.0, 1.0), (-1.0, 2.0), (10.0, 100.0), (100.0, 1000.0)],
            )
            .to_svg();
        // Only the two positive points survive.
        assert_eq!(svg.matches("<circle").count(), 2);
    }

    #[test]
    fn degenerate_range_is_widened() {
        let svg = LinePlot::new("flat")
            .with_series("s", vec![(1.0, 5.0), (2.0, 5.0)])
            .to_svg();
        // Renders without NaN coordinates.
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn empty_plot_renders() {
        let svg = LinePlot::new("empty").to_svg();
        assert!(svg.starts_with("<svg"));
        assert!(!svg.contains("NaN"));
    }

    #[test]
    fn labels_are_escaped() {
        let svg = LinePlot::new("a < b & c")
            .with_series("x<y", vec![(1.0, 1.0)])
            .to_svg();
        assert!(svg.contains("a &lt; b &amp; c"));
        assert!(svg.contains("x&lt;y"));
        assert!(!svg.contains("a < b"));
    }

    #[test]
    fn linear_ticks_are_nice_numbers() {
        let t = ticks(0.0, 10.0, false);
        assert_eq!(t, vec![0.0, 2.0, 4.0, 6.0, 8.0, 10.0]);
        let t2 = ticks(0.0, 1.0, false);
        assert_eq!(t2, vec![0.0, 0.2, 0.4, 0.6000000000000001, 0.8, 1.0]);
    }

    #[test]
    fn log_ticks_are_decades() {
        let t = ticks(0.0, 3.2, true); // 10^0 .. 10^3.2
        assert_eq!(t, vec![0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn compact_labels() {
        assert_eq!(compact(3.0), "3");
        assert_eq!(compact(0.25), "0.25");
        assert_eq!(compact(1_000_000.0), "1e6");
        assert_eq!(compact(10.0), "10");
    }

    #[test]
    fn write_creates_file() {
        let dir = std::env::temp_dir().join("pp_analysis_plot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("chart.svg");
        basic_plot().write(&path).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.starts_with("<svg"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
