//! Input-multiset generators with controlled plurality margins.

use circles_core::{Color, GreedyDecomposition};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Builds a multiset where color 0 wins by exactly `margin` over a field of
/// equally supported losers: losers get `b` agents each and the winner gets
/// `b + margin`, where `b` is the largest value fitting `n` (leftover agents
/// are discarded by reducing `n` — the function returns the actual inputs,
/// whose length may be slightly below the requested `n`).
///
/// # Panics
///
/// Panics when `k == 0`, `margin == 0`, or the requested size cannot host
/// one agent per loser plus the margin.
pub fn margin_workload(n: usize, k: u16, margin: usize) -> Vec<Color> {
    assert!(k > 0, "k must be positive");
    assert!(
        margin > 0,
        "margin must be positive (ties are a separate workload)"
    );
    let k_usize = usize::from(k);
    if k_usize == 1 {
        return vec![Color(0); n];
    }
    let b = n.saturating_sub(margin) / k_usize;
    assert!(
        b >= 1 || k_usize == 1,
        "population {n} too small for {k} colors with margin {margin}"
    );
    let mut inputs = Vec::with_capacity(b * k_usize + margin);
    for _ in 0..(b + margin) {
        inputs.push(Color(0));
    }
    for c in 1..k {
        for _ in 0..b {
            inputs.push(Color(c));
        }
    }
    inputs
}

/// The count-level form of [`margin_workload`]: per-color counts instead of
/// an expanded input vector, so populations far past addressable-memory
/// scale (`n = 10^9`–`10^18`) can be fed straight into a
/// [`CountConfig`](pp_protocol::CountConfig) without materializing `n`
/// inputs. Same shape: losers get `b = (n − margin) / k` agents each, the
/// winner (color 0) gets `b + margin`, leftover agents are discarded.
///
/// # Panics
///
/// Panics under the same conditions as [`margin_workload`].
pub fn margin_counts(n: u64, k: u16, margin: u64) -> Vec<(Color, u64)> {
    assert!(k > 0, "k must be positive");
    assert!(
        margin > 0,
        "margin must be positive (ties are a separate workload)"
    );
    if k == 1 {
        return vec![(Color(0), n)];
    }
    let b = n.saturating_sub(margin) / u64::from(k);
    assert!(
        b >= 1,
        "population {n} too small for {k} colors with margin {margin}"
    );
    let mut counts = vec![(Color(0), b + margin)];
    counts.extend((1..k).map(|c| (Color(c), b)));
    counts
}

/// A geometric profile: color `i` gets weight `ratio^i` (winner 0), with a
/// guaranteed strict margin of at least 1 (enforced by construction).
///
/// # Panics
///
/// Panics when `k == 0` or `ratio <= 1.0` or the population is too small to
/// give each color at least one agent.
pub fn geometric_workload(n: usize, k: u16, ratio: f64) -> Vec<Color> {
    assert!(k > 0, "k must be positive");
    assert!(ratio > 1.0, "ratio must exceed 1 for a strict winner");
    let k_usize = usize::from(k);
    assert!(n > k_usize, "population too small");
    // Raw weights, largest first.
    let weights: Vec<f64> = (0..k_usize).map(|i| ratio.powi(-(i as i32))).collect();
    let total: f64 = weights.iter().sum();
    let mut counts: Vec<usize> = weights
        .iter()
        .map(|w| ((w / total) * n as f64).floor().max(1.0) as usize)
        .collect();
    // Distribute the remainder to the winner; then enforce strictness.
    let assigned: usize = counts.iter().sum();
    counts[0] += n.saturating_sub(assigned);
    if counts[0] <= counts[1] {
        counts[0] = counts[1] + 1;
    }
    let mut inputs = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            inputs.push(Color(i as u16));
        }
    }
    inputs
}

/// The tightest race expressible for `(n, k)`: the winner (color 0) leads
/// the runner-up by exactly 1 whenever some margin-1 profile sums to `n`,
/// and by the minimal achievable margin otherwise (e.g. `k = 2` with even
/// `n` forces margin 2).
///
/// Construction: pick the smallest `m` such that the winner at `m + 1` and
/// `k - 1` losers capped at `m` can absorb `n`, then fill losers greedily.
///
/// # Panics
///
/// Panics when `k == 0` or the population cannot host `k` colors.
pub fn photo_finish_workload(n: usize, k: u16) -> Vec<Color> {
    assert!(k > 0, "k must be positive");
    let k_usize = usize::from(k);
    if k_usize == 1 {
        return vec![Color(0); n];
    }
    assert!(
        n > k_usize,
        "population too small for a strict photo finish"
    );
    // Smallest m with 0 <= n - (m+1) <= m(k-1).
    let mut m = (n - 1).div_ceil(k_usize);
    while (n as i64 - (m as i64 + 1)) > (m * (k_usize - 1)) as i64 {
        m += 1;
    }
    let mut counts = vec![0usize; k_usize];
    counts[0] = m + 1;
    let mut rest = n - (m + 1);
    for slot in counts.iter_mut().skip(1) {
        let take = rest.min(m);
        *slot = take;
        rest -= take;
    }
    debug_assert_eq!(rest, 0);
    let mut inputs = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            inputs.push(Color(i as u16));
        }
    }
    inputs
}

/// A perfectly tied workload: the top `ways` colors share the maximum count.
///
/// # Panics
///
/// Panics when `ways < 2`, `ways > k`, or the population cannot host the
/// tie.
pub fn tie_workload(n: usize, k: u16, ways: u16) -> Vec<Color> {
    assert!(ways >= 2, "a tie involves at least two colors");
    assert!(ways <= k, "cannot tie more colors than exist");
    let ways_usize = usize::from(ways);
    assert!(n >= 2 * ways_usize, "population too small for the tie");
    // Tied colors get `top` each; remaining colors share what's left with
    // counts strictly below `top`.
    let rest = usize::from(k) - ways_usize;
    let mut top = n / ways_usize;
    let mut counts;
    loop {
        assert!(
            top >= 1,
            "cannot construct tie for n={n}, k={k}, ways={ways}"
        );
        counts = vec![top; ways_usize];
        let mut leftover = n - top * ways_usize;
        let mut extra = vec![0usize; rest];
        let cap = top.saturating_sub(1);
        for slot in extra.iter_mut() {
            let take = leftover.min(cap);
            *slot = take;
            leftover -= take;
        }
        if leftover == 0 {
            counts.extend(extra);
            break;
        }
        // Too much leftover to hide below the tie line: lower the line.
        top -= 1;
    }
    let mut inputs = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            inputs.push(Color(i as u16));
        }
    }
    inputs
}

/// A tied workload that keeps the *losers* as populated as possible: the
/// `ways` winners share the smallest feasible maximum count, and the
/// remaining colors absorb everything else (each strictly below the tie
/// line). Use this when measuring where losers' frozen outputs end up
/// (experiment E7); [`tie_workload`] maximizes the tie mass instead and can
/// leave loser colors empty.
///
/// # Panics
///
/// Same conditions as [`tie_workload`].
pub fn tie_workload_balanced(n: usize, k: u16, ways: u16) -> Vec<Color> {
    assert!(ways >= 2, "a tie involves at least two colors");
    assert!(ways <= k, "cannot tie more colors than exist");
    let ways_usize = usize::from(ways);
    let losers = usize::from(k) - ways_usize;
    assert!(n >= 2 * ways_usize, "population too small for the tie");
    // Smallest feasible tie line: leftover fits under the losers' cap.
    let mut top = n.div_ceil(usize::from(k)).max(1);
    loop {
        let leftover = n as i64 - (ways_usize * top) as i64;
        if leftover >= 0 && leftover <= (losers * top.saturating_sub(1)) as i64 {
            break;
        }
        top += 1;
    }
    let mut counts = vec![top; ways_usize];
    let mut leftover = n - ways_usize * top;
    for _ in 0..losers {
        let take = leftover.min(top - 1);
        counts.push(take);
        leftover -= take;
    }
    debug_assert_eq!(leftover, 0);
    let mut inputs = Vec::new();
    for (i, &c) in counts.iter().enumerate() {
        for _ in 0..c {
            inputs.push(Color(i as u16));
        }
    }
    inputs
}

/// Shuffles a workload deterministically (agent order is irrelevant to
/// anonymous dynamics but matters to index-based schedulers like the
/// clustered one).
pub fn shuffled(mut inputs: Vec<Color>, seed: u64) -> Vec<Color> {
    let mut rng = StdRng::seed_from_u64(seed);
    inputs.shuffle(&mut rng);
    inputs
}

/// The unique winner of a workload, as ground truth for correctness checks.
///
/// # Panics
///
/// Panics when the workload is invalid or tied — generator outputs are
/// supposed to be strict unless explicitly tied.
pub fn true_winner(inputs: &[Color], k: u16) -> Color {
    GreedyDecomposition::from_inputs(inputs, k)
        .expect("valid workload")
        .winner()
        .expect("workload has a unique winner")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counts_of(inputs: &[Color], k: u16) -> Vec<usize> {
        let mut counts = vec![0usize; usize::from(k)];
        for c in inputs {
            counts[c.index()] += 1;
        }
        counts
    }

    #[test]
    fn margin_workload_has_exact_margin() {
        let inputs = margin_workload(100, 4, 5);
        let counts = counts_of(&inputs, 4);
        assert_eq!(counts[0], counts[1] + 5);
        assert!(counts[1] == counts[2] && counts[2] == counts[3]);
        assert_eq!(true_winner(&inputs, 4), Color(0));
    }

    #[test]
    fn margin_counts_match_expanded_workload() {
        let inputs = margin_workload(100, 4, 5);
        let expanded = counts_of(&inputs, 4);
        let counts = margin_counts(100, 4, 5);
        for (i, &(color, c)) in counts.iter().enumerate() {
            assert_eq!(color, Color(i as u16));
            assert_eq!(c as usize, expanded[i]);
        }
        // And it scales where the expanded form cannot.
        let huge = margin_counts(1_000_000_000_000, 3, 100_000_000_000);
        assert_eq!(huge[0].1, 300_000_000_000 + 100_000_000_000);
        assert_eq!(huge.iter().map(|&(_, c)| c).sum::<u64>(), 1_000_000_000_000);
    }

    #[test]
    fn margin_one_is_strict() {
        let inputs = margin_workload(16, 3, 1);
        let g = GreedyDecomposition::from_inputs(&inputs, 3).unwrap();
        assert_eq!(g.winner(), Some(Color(0)));
    }

    #[test]
    fn geometric_is_strictly_decreasing_at_top() {
        let inputs = geometric_workload(100, 4, 2.0);
        let counts = counts_of(&inputs, 4);
        assert!(counts[0] > counts[1]);
        assert!(counts.iter().all(|&c| c >= 1));
        assert_eq!(true_winner(&inputs, 4), Color(0));
    }

    #[test]
    fn photo_finish_margin_is_one_when_achievable() {
        for (n, k) in [(10, 3), (17, 4), (100, 7), (9, 2), (13, 3), (14, 3)] {
            let inputs = photo_finish_workload(n, k);
            let counts = counts_of(&inputs, k);
            let max_rest = *counts[1..].iter().max().unwrap();
            assert_eq!(counts[0], max_rest + 1, "n={n} k={k}: {counts:?}");
            assert_eq!(inputs.len(), n);
        }
    }

    #[test]
    fn photo_finish_even_binary_population_gets_minimal_margin() {
        // Margin 1 is impossible for k=2 with even n; minimal is 2.
        let inputs = photo_finish_workload(10, 2);
        let counts = counts_of(&inputs, 2);
        assert_eq!(counts, vec![6, 4]);
    }

    #[test]
    fn tie_workload_is_tied() {
        let inputs = tie_workload(12, 4, 2);
        let g = GreedyDecomposition::from_inputs(&inputs, 4).unwrap();
        assert!(g.is_tie());
        assert_eq!(g.winners().len(), 2);
        assert_eq!(inputs.len(), 12);
    }

    #[test]
    fn three_way_tie() {
        let inputs = tie_workload(9, 3, 3);
        let g = GreedyDecomposition::from_inputs(&inputs, 3).unwrap();
        assert_eq!(g.winners().len(), 3);
    }

    #[test]
    fn tie_with_remainder_hides_it_below_the_line() {
        // n=11, ways=2, k=3: tied pair must strictly lead the third color.
        let inputs = tie_workload(11, 3, 2);
        let g = GreedyDecomposition::from_inputs(&inputs, 3).unwrap();
        assert_eq!(g.winners().len(), 2);
        assert_eq!(inputs.len(), 11);
    }

    #[test]
    fn balanced_tie_keeps_losers_populated() {
        let inputs = tie_workload_balanced(120, 3, 2);
        let counts = counts_of(&inputs, 3);
        let g = GreedyDecomposition::from_inputs(&inputs, 3).unwrap();
        assert_eq!(g.winners().len(), 2);
        assert!(counts[2] > 0, "loser color left empty: {counts:?}");
        assert!(counts[2] < counts[0]);
        assert_eq!(inputs.len(), 120);
    }

    #[test]
    fn balanced_tie_three_way_with_loser() {
        let inputs = tie_workload_balanced(100, 4, 3);
        let counts = counts_of(&inputs, 4);
        let g = GreedyDecomposition::from_inputs(&inputs, 4).unwrap();
        assert_eq!(g.winners().len(), 3);
        assert!(counts[3] > 0);
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let base = margin_workload(30, 3, 2);
        let a = shuffled(base.clone(), 9);
        let b = shuffled(base.clone(), 9);
        assert_eq!(a, b);
        let mut sa = a.clone();
        let mut sb = base.clone();
        sa.sort();
        sb.sort();
        assert_eq!(sa, sb);
    }

    #[test]
    fn single_color_workloads() {
        assert_eq!(margin_workload(5, 1, 1), vec![Color(0); 5]);
        assert_eq!(photo_finish_workload(5, 1), vec![Color(0); 5]);
    }

    #[test]
    #[should_panic(expected = "margin must be positive")]
    fn zero_margin_rejected() {
        let _ = margin_workload(10, 2, 0);
    }
}
