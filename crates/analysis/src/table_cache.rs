//! On-disk caching of discovered transition tables, keyed by protocol
//! identity.
//!
//! A [`TableCache`] is a directory of `.ppts` store files (see
//! [`pp_protocol::transition_store`]), one per protocol parameterization:
//! file names embed the protocol name, its
//! [`fingerprint_param`](Protocol::fingerprint_param) (the color count `k`
//! for Circles) and the 64-bit identity fingerprint, and every load
//! re-verifies that fingerprint against the requesting protocol. Sweeps go
//! through [`TrialRunner::run_cached`](crate::trial::TrialRunner::run_cached),
//! which loads the table if a valid store exists (zero protocol calls),
//! falls back to cold discovery otherwise, and writes the table back when
//! it grew — so the `O(slots²)` discovery becomes a once-per-machine cost
//! instead of a once-per-process one.
//!
//! The cache directory is chosen explicitly
//! ([`TrialRunner::table_cache_dir`](crate::trial::TrialRunner::table_cache_dir))
//! or ambiently through the `PP_TABLE_CACHE` environment variable
//! ([`TableCache::from_env`]).
//!
//! Corrupt or foreign cache files are **never trusted**: any load failure
//! other than "file not found" is reported to stderr with its typed
//! [`StoreError`] and the sweep silently proceeds with cold discovery,
//! after which the valid, freshly discovered table overwrites the bad
//! file.

use std::fmt::Display;
use std::path::{Path, PathBuf};
use std::str::FromStr;

use pp_protocol::transition_store::{self, StoreError, StoreMeta, STORE_EXT};
use pp_protocol::{Protocol, TransitionTable};

/// Environment variable naming the ambient cache directory.
pub const CACHE_ENV: &str = "PP_TABLE_CACHE";

/// How a cached table was obtained; returned by
/// [`TableCache::load_or_empty`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheStatus {
    /// A valid store file was loaded.
    Hit,
    /// No store file existed; the table starts empty.
    Miss,
    /// A store file existed but failed verification (typed error reported
    /// to stderr); the table starts empty and discovery runs cold.
    Invalid,
}

/// A directory of persisted transition tables; see the [module docs](self).
#[derive(Debug, Clone)]
pub struct TableCache {
    dir: PathBuf,
}

impl TableCache {
    /// A cache rooted at `dir` (created lazily on first
    /// [`store`](Self::store)).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        TableCache { dir: dir.into() }
    }

    /// The cache named by the `PP_TABLE_CACHE` environment variable, or
    /// `None` when unset or empty.
    pub fn from_env() -> Option<Self> {
        match std::env::var_os(CACHE_ENV) {
            Some(dir) if !dir.is_empty() => Some(TableCache::new(PathBuf::from(dir))),
            _ => None,
        }
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The store path for `protocol`:
    /// `<name>-p<param>-<fingerprint as 16 hex digits>.ppts`, with
    /// non-alphanumeric name bytes mapped to `-` so variant names like
    /// `circles[strict-min]` stay filesystem-safe.
    pub fn path_for<P: Protocol>(&self, protocol: &P) -> PathBuf {
        let name: String = protocol
            .name()
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '-' })
            .collect();
        self.dir.join(format!(
            "{name}-p{}-{:016x}.{STORE_EXT}",
            protocol.fingerprint_param(),
            transition_store::fingerprint(protocol),
        ))
    }

    /// Loads the store for `protocol`, propagating every failure as its
    /// typed [`StoreError`].
    ///
    /// # Errors
    ///
    /// See [`transition_store::load`].
    pub fn load<P>(&self, protocol: &P) -> Result<TransitionTable<P>, StoreError>
    where
        P: Protocol,
        P::State: FromStr,
        <P::State as FromStr>::Err: Display,
    {
        transition_store::load(protocol, &self.path_for(protocol))
    }

    /// Loads the store for `protocol`, degrading every failure to an empty
    /// table: a missing file is a quiet [`CacheStatus::Miss`]; any other
    /// error is reported to stderr, the offending file is **quarantined**
    /// (renamed to `<name>.ppts.corrupt`), and the load becomes
    /// [`CacheStatus::Invalid`]. Either way the caller can proceed with
    /// cold discovery — a bad cache file can cost time, never correctness.
    ///
    /// Quarantining keeps the bad bytes around for post-mortem while
    /// guaranteeing the *next* run's [`store`](Self::store) re-populates
    /// the slot instead of every subsequent run tripping over the same
    /// corrupt file and paying cold discovery forever.
    pub fn load_or_empty<P>(&self, protocol: &P) -> (TransitionTable<P>, CacheStatus)
    where
        P: Protocol,
        P::State: FromStr,
        <P::State as FromStr>::Err: Display,
    {
        match self.load(protocol) {
            Ok(table) => (table, CacheStatus::Hit),
            Err(StoreError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                (TransitionTable::new(), CacheStatus::Miss)
            }
            Err(e) => {
                let path = self.path_for(protocol);
                let quarantine = quarantine_path(&path);
                match std::fs::rename(&path, &quarantine) {
                    Ok(()) => eprintln!(
                        "table cache: quarantining {} -> {}: {e}; rediscovering cold",
                        path.display(),
                        quarantine.display()
                    ),
                    Err(io) => eprintln!(
                        "table cache: ignoring {}: {e}; quarantine rename failed ({io}); \
                         rediscovering cold",
                        path.display()
                    ),
                }
                (TransitionTable::new(), CacheStatus::Invalid)
            }
        }
    }

    /// Persists `table` as the store for `protocol`, creating the cache
    /// directory if needed. The write is atomic (see
    /// [`transition_store::save`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] when the directory cannot be created or the file
    /// cannot be written.
    pub fn store<P>(
        &self,
        protocol: &P,
        table: &TransitionTable<P>,
    ) -> Result<StoreMeta, StoreError>
    where
        P: Protocol,
        P::State: Display,
    {
        std::fs::create_dir_all(&self.dir)?;
        transition_store::save(table, protocol, &self.path_for(protocol))
    }
}

/// The quarantine destination of a rejected store file: the same path with
/// `.corrupt` appended (`circles-p3-....ppts.corrupt`).
fn quarantine_path(path: &Path) -> PathBuf {
    let mut name = path.file_name().map_or_else(
        || std::ffi::OsString::from("store"),
        std::ffi::OsStr::to_os_string,
    );
    name.push(".corrupt");
    path.with_file_name(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::CirclesProtocol;

    fn temp_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("pp-table-cache-{tag}-{}", std::process::id()))
    }

    #[test]
    fn path_embeds_identity_and_sanitizes_names() {
        let cache = TableCache::new("/tmp/x");
        let k3 = CirclesProtocol::new(3).unwrap();
        let k4 = CirclesProtocol::new(4).unwrap();
        let p3 = cache.path_for(&k3);
        let p4 = cache.path_for(&k4);
        assert_ne!(p3, p4, "different k must map to different files");
        let name = p3.file_name().unwrap().to_str().unwrap();
        assert!(name.starts_with("circles-p3-"));
        assert!(name.ends_with(".ppts"));
        assert!(
            name.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '.'),
            "{name} must be filesystem-safe"
        );
    }

    #[test]
    fn missing_store_is_a_quiet_miss() {
        let cache = TableCache::new(temp_dir("miss").join("never-created"));
        let protocol = CirclesProtocol::new(3).unwrap();
        let (table, status) = cache.load_or_empty(&protocol);
        assert_eq!(status, CacheStatus::Miss);
        assert!(table.is_empty());
    }

    #[test]
    fn corrupt_store_is_quarantined_then_repopulated() {
        let dir = temp_dir("quarantine");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let cache = TableCache::new(&dir);
        let protocol = CirclesProtocol::new(3).unwrap();
        let path = cache.path_for(&protocol);
        std::fs::write(&path, b"definitely not a transition store").unwrap();

        let (table, status) = cache.load_or_empty(&protocol);
        assert_eq!(status, CacheStatus::Invalid);
        assert!(table.is_empty());
        assert!(!path.exists(), "the bad file left the cache slot");
        let quarantine = quarantine_path(&path);
        assert!(
            quarantine.exists(),
            "the bad bytes were kept for post-mortem"
        );
        assert!(quarantine
            .file_name()
            .unwrap()
            .to_str()
            .unwrap()
            .ends_with(".ppts.corrupt"));

        // The slot re-populates on the next store, and loads cleanly again.
        let discovered = TransitionTable::new();
        cache.store(&protocol, &discovered).unwrap();
        let (_, status) = cache.load_or_empty(&protocol);
        assert_eq!(status, CacheStatus::Hit);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
