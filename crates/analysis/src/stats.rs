//! Sample statistics and scaling-exponent estimation.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (midpoint interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
    /// 10th percentile (nearest-rank interpolation).
    pub p10: f64,
    /// 90th percentile (nearest-rank interpolation).
    pub p90: f64,
}

impl Summary {
    /// Computes summary statistics.
    ///
    /// # Panics
    ///
    /// Panics on an empty sample or non-finite values — experiment code
    /// producing NaNs is a bug to surface, not to average over.
    pub fn from_samples(samples: &[f64]) -> Self {
        assert!(!samples.is_empty(), "summary of an empty sample");
        assert!(
            samples.iter().all(|x| x.is_finite()),
            "summary of non-finite samples"
        );
        let count = samples.len();
        let mean = samples.iter().sum::<f64>() / count as f64;
        let var = if count > 1 {
            samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (count - 1) as f64
        } else {
            0.0
        };
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        Summary {
            count,
            mean,
            std: var.sqrt(),
            min: sorted[0],
            median: percentile_of_sorted(&sorted, 50.0),
            max: sorted[count - 1],
            p10: percentile_of_sorted(&sorted, 10.0),
            p90: percentile_of_sorted(&sorted, 90.0),
        }
    }
}

impl Summary {
    /// Half-width of the normal-approximation 95% confidence interval for
    /// the mean (`1.96·σ/√n`; 0 for a single sample). With the 16–64 seeds
    /// the experiments use, the CLT approximation is adequate for the
    /// reporting precision of the tables.
    pub fn ci95(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std / (self.count as f64).sqrt()
        }
    }
}

/// Percentile by linear interpolation on an already-sorted sample.
fn percentile_of_sorted(sorted: &[f64], pct: f64) -> f64 {
    debug_assert!(!sorted.is_empty());
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    let frac = rank - lo as f64;
    sorted[lo] + (sorted[hi] - sorted[lo]) * frac
}

/// Least-squares slope of `ln(y)` against `ln(x)` — the empirical scaling
/// exponent `α` in `y ≈ c·x^α`.
///
/// # Panics
///
/// Panics when fewer than two points are given or any coordinate is not
/// strictly positive.
pub fn log_log_slope(points: &[(f64, f64)]) -> f64 {
    assert!(points.len() >= 2, "need at least two points for a slope");
    assert!(
        points.iter().all(|&(x, y)| x > 0.0 && y > 0.0),
        "log-log slope needs positive coordinates"
    );
    let n = points.len() as f64;
    let (mut sx, mut sy, mut sxx, mut sxy) = (0.0, 0.0, 0.0, 0.0);
    for &(x, y) in points {
        let (lx, ly) = (x.ln(), y.ln());
        sx += lx;
        sy += ly;
        sxx += lx * lx;
        sxy += lx * ly;
    }
    (n * sxy - sx * sy) / (n * sxx - sx * sx)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::from_samples(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert!((s.mean - 3.0).abs() < 1e-12);
        assert!((s.median - 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        // Sample std of 1..5 is sqrt(2.5).
        assert!((s.std - 2.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::from_samples(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p90, 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn summary_rejects_empty() {
        let _ = Summary::from_samples(&[]);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn summary_rejects_nan() {
        let _ = Summary::from_samples(&[1.0, f64::NAN]);
    }

    #[test]
    fn ci95_shrinks_with_sample_size() {
        let small = Summary::from_samples(&[1.0, 3.0, 5.0, 7.0]);
        let big_samples: Vec<f64> = (0..64).map(|i| f64::from(i % 8)).collect();
        let big = Summary::from_samples(&big_samples);
        assert!(small.ci95() > 0.0);
        assert!(big.ci95() < small.ci95());
        assert_eq!(Summary::from_samples(&[4.2]).ci95(), 0.0);
    }

    #[test]
    fn percentiles_interpolate() {
        let s = Summary::from_samples(&[0.0, 10.0]);
        assert!((s.p10 - 1.0).abs() < 1e-12);
        assert!((s.p90 - 9.0).abs() < 1e-12);
    }

    #[test]
    fn slope_recovers_exponent() {
        let points: Vec<(f64, f64)> = (1..=6)
            .map(|i| {
                let x = (10 * i) as f64;
                (x, 3.0 * x.powf(2.0))
            })
            .collect();
        let slope = log_log_slope(&points);
        assert!((slope - 2.0).abs() < 1e-9, "slope {slope}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn slope_rejects_nonpositive() {
        let _ = log_log_slope(&[(1.0, 0.0), (2.0, 1.0)]);
    }
}
