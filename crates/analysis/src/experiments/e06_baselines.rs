//! E6 — Circles against the baselines: states, correctness, speed.
//!
//! Paper anchor: §1's positioning of Circles among always-correct
//! protocols. At `k = 2` the 4-state protocol is the gold standard and
//! Circles matches its always-correctness with 8 states. For `k ≥ 3`,
//! undecided-state dynamics and greedy cancellation are smaller and often
//! faster — but not correct: their failure rates on close races are the
//! point of this table.

use circles_core::{CirclesProtocol, Color};
use pp_baselines::{CancellationPlurality, FourStateMajority, UndecidedDynamics};
use pp_protocol::EnumerableProtocol;

use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialResult, TrialRunner};
use crate::workloads::{margin_workload, photo_finish_workload, shuffled, true_winner};

/// Parameters for E6.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size.
    pub n: usize,
    /// Color counts (2 exercises the 4-state baseline too).
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Which engine executes the trials.
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 128,
            ks: vec![2, 3, 5, 8],
            seeds: 64,
            max_steps: 500_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Indexed,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 24,
            ks: vec![2, 3],
            seeds: 8,
            max_steps: 20_000_000,
            threads: 2,
            backend: Backend::Indexed,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

struct ProtocolRow {
    name: &'static str,
    states: usize,
    results: Vec<TrialResult>,
}

fn row_for<P>(
    name: &'static str,
    protocol: &P,
    inputs: &[Color],
    expected: Color,
    runner: &TrialRunner,
) -> ProtocolRow
where
    P: EnumerableProtocol<Input = Color, Output = Color> + Sync,
    P::State: Send + Sync,
{
    ProtocolRow {
        name,
        states: protocol.state_complexity(),
        results: runner.run(protocol, inputs, expected),
    }
}

fn run_protocol(
    name: &'static str,
    k: u16,
    inputs: &[Color],
    expected: Color,
    runner: &TrialRunner,
) -> Option<ProtocolRow> {
    match name {
        "circles" => {
            let p = CirclesProtocol::new(k).expect("k >= 1");
            Some(row_for(name, &p, inputs, expected, runner))
        }
        "four-state" => {
            if k != 2 {
                return None;
            }
            Some(row_for(
                name,
                &FourStateMajority::new(),
                inputs,
                expected,
                runner,
            ))
        }
        "undecided" => Some(row_for(
            name,
            &UndecidedDynamics::new(k),
            inputs,
            expected,
            runner,
        )),
        "cancellation" => Some(row_for(
            name,
            &CancellationPlurality::new(k),
            inputs,
            expected,
            runner,
        )),
        other => panic!("unknown protocol {other}"),
    }
}

/// The protocols E6 compares.
pub const PROTOCOLS: [&str; 4] = ["circles", "four-state", "undecided", "cancellation"];

/// Runs E6 and returns the table.
pub fn run(params: &Params) -> Table {
    let runner = TrialRunner::new(params.backend)
        .seeds(params.seeds)
        .threads(params.threads)
        .max_steps(params.max_steps);
    let mut table = Table::new(
        &format!(
            "E6 — Circles vs baselines (uniform-random scheduler, {} backend)",
            params.backend.name()
        ),
        &[
            "k",
            "workload",
            "protocol",
            "states",
            "correct rate",
            "stabilized rate",
            "consensus mean (correct runs)",
        ],
    );
    for &k in &params.ks {
        let workloads = [
            (
                "photo finish",
                shuffled(photo_finish_workload(params.n, k), 5),
            ),
            (
                "margin 12%",
                shuffled(margin_workload(params.n, k, (params.n / 8).max(1)), 5),
            ),
        ];
        for (wl_name, inputs) in workloads {
            let expected = true_winner(&inputs, k);
            for proto in PROTOCOLS {
                let Some(row) = run_protocol(proto, k, &inputs, expected, &runner) else {
                    continue;
                };
                let total = row.results.len();
                let correct = row.results.iter().filter(|r| r.correct).count();
                let stabilized = row.results.iter().filter(|r| r.stabilized).count();
                let correct_times: Vec<f64> = row
                    .results
                    .iter()
                    .filter(|r| r.correct)
                    .map(|r| r.steps_to_consensus as f64)
                    .collect();
                let mean = if correct_times.is_empty() {
                    "-".to_string()
                } else {
                    fmt_f64(Summary::from_samples(&correct_times).mean)
                };
                table.push_row(vec![
                    k.to_string(),
                    wl_name.to_string(),
                    row.name.to_string(),
                    row.states.to_string(),
                    format!("{:.2}", correct as f64 / total as f64),
                    format!("{:.2}", stabilized as f64 / total as f64),
                    mean,
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circles_rows_are_always_correct_on_both_backends() {
        for backend in Backend::ALL {
            let table = run(&Params::quick().with_backend(backend));
            for row in table.rows() {
                if row[2] == "circles" {
                    assert_eq!(
                        row[4],
                        "1.00",
                        "circles failed on {}: {row:?}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn four_state_only_at_k2() {
        let table = run(&Params::quick());
        for row in table.rows() {
            if row[2] == "four-state" {
                assert_eq!(row[0], "2");
            }
        }
    }
}
