//! E6 — Circles against the baselines: states, correctness, speed.
//!
//! Paper anchor: §1's positioning of Circles among always-correct
//! protocols. At `k = 2` the 4-state protocol is the gold standard and
//! Circles matches its always-correctness with 8 states. For `k ≥ 3`,
//! undecided-state dynamics and greedy cancellation are smaller and often
//! faster — but not correct: their failure rates on close races are the
//! point of this table.

use circles_core::{CirclesProtocol, Color};
use pp_baselines::{CancellationPlurality, FourStateMajority, UndecidedDynamics};
use pp_protocol::{EnumerableProtocol, UniformPairScheduler};

use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{run_trial, TrialResult};
use crate::workloads::{margin_workload, photo_finish_workload, shuffled, true_winner};

/// Parameters for E6.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size.
    pub n: usize,
    /// Color counts (2 exercises the 4-state baseline too).
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 128,
            ks: vec![2, 3, 5, 8],
            seeds: 64,
            max_steps: 500_000_000,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 24,
            ks: vec![2, 3],
            seeds: 8,
            max_steps: 20_000_000,
            threads: 2,
        }
    }
}

struct ProtocolRow {
    name: &'static str,
    states: usize,
    results: Vec<TrialResult>,
}

fn run_protocol(
    name: &'static str,
    k: u16,
    inputs: &[Color],
    expected: Color,
    seeds: &[u64],
    threads: usize,
    max_steps: u64,
) -> Option<ProtocolRow> {
    match name {
        "circles" => {
            let p = CirclesProtocol::new(k).expect("k >= 1");
            Some(ProtocolRow {
                name,
                states: p.state_complexity(),
                results: run_seeded(seeds, threads, |seed| {
                    run_trial(
                        &p,
                        inputs,
                        UniformPairScheduler::new(),
                        seed,
                        expected,
                        max_steps,
                    )
                    .expect("trial")
                }),
            })
        }
        "four-state" => {
            if k != 2 {
                return None;
            }
            let p = FourStateMajority::new();
            Some(ProtocolRow {
                name,
                states: p.state_complexity(),
                results: run_seeded(seeds, threads, |seed| {
                    run_trial(
                        &p,
                        inputs,
                        UniformPairScheduler::new(),
                        seed,
                        expected,
                        max_steps,
                    )
                    .expect("trial")
                }),
            })
        }
        "undecided" => {
            let p = UndecidedDynamics::new(k);
            Some(ProtocolRow {
                name,
                states: p.state_complexity(),
                results: run_seeded(seeds, threads, |seed| {
                    run_trial(
                        &p,
                        inputs,
                        UniformPairScheduler::new(),
                        seed,
                        expected,
                        max_steps,
                    )
                    .expect("trial")
                }),
            })
        }
        "cancellation" => {
            let p = CancellationPlurality::new(k);
            Some(ProtocolRow {
                name,
                states: p.state_complexity(),
                results: run_seeded(seeds, threads, |seed| {
                    run_trial(
                        &p,
                        inputs,
                        UniformPairScheduler::new(),
                        seed,
                        expected,
                        max_steps,
                    )
                    .expect("trial")
                }),
            })
        }
        other => panic!("unknown protocol {other}"),
    }
}

/// The protocols E6 compares.
pub const PROTOCOLS: [&str; 4] = ["circles", "four-state", "undecided", "cancellation"];

/// Runs E6 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E6 — Circles vs baselines (uniform-random scheduler)",
        &[
            "k",
            "workload",
            "protocol",
            "states",
            "correct rate",
            "stabilized rate",
            "consensus mean (correct runs)",
        ],
    );
    let seeds = seed_range(params.seeds);
    for &k in &params.ks {
        let workloads = [
            (
                "photo finish",
                shuffled(photo_finish_workload(params.n, k), 5),
            ),
            (
                "margin 12%",
                shuffled(margin_workload(params.n, k, (params.n / 8).max(1)), 5),
            ),
        ];
        for (wl_name, inputs) in workloads {
            let expected = true_winner(&inputs, k);
            for proto in PROTOCOLS {
                let Some(row) = run_protocol(
                    proto,
                    k,
                    &inputs,
                    expected,
                    &seeds,
                    params.threads,
                    params.max_steps,
                ) else {
                    continue;
                };
                let total = row.results.len();
                let correct = row.results.iter().filter(|r| r.correct).count();
                let stabilized = row.results.iter().filter(|r| r.stabilized).count();
                let correct_times: Vec<f64> = row
                    .results
                    .iter()
                    .filter(|r| r.correct)
                    .map(|r| r.steps_to_consensus as f64)
                    .collect();
                let mean = if correct_times.is_empty() {
                    "-".to_string()
                } else {
                    fmt_f64(Summary::from_samples(&correct_times).mean)
                };
                table.push_row(vec![
                    k.to_string(),
                    wl_name.to_string(),
                    row.name.to_string(),
                    row.states.to_string(),
                    format!("{:.2}", correct as f64 / total as f64),
                    format!("{:.2}", stabilized as f64 / total as f64),
                    mean,
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn circles_rows_are_always_correct() {
        let table = run(&Params::quick());
        for row in table.rows() {
            if row[2] == "circles" {
                assert_eq!(row[4], "1.00", "circles failed: {row:?}");
            }
        }
    }

    #[test]
    fn four_state_only_at_k2() {
        let table = run(&Params::quick());
        for row in table.rows() {
            if row[2] == "four-state" {
                assert_eq!(row[0], "2");
            }
        }
    }
}
