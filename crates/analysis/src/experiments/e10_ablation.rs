//! E10 — ablation of the exchange rule: why "strictly decreases the
//! minimum" is exactly right.
//!
//! Paper anchor: the transition function of §2 and the two proofs that
//! depend on its precise form — strictness drives the potential argument
//! (Theorem 3.4), and minimizing the *minimum* drives the circle
//! reconstruction (Lemma 3.6). Each variant is model-checked on every input
//! profile of a small grid; the table reports how many instances
//! stabilize on every schedule, reach a unique silent configuration, match
//! the paper's predicted terminal multiset, and stably compute the
//! majority.

use circles_core::prediction::predicted_brakets;
use circles_core::variants::{ExchangeRule, VariantCircles};
use circles_core::{BraKet, Color, GreedyDecomposition};
use pp_mc::properties::{changes_always_terminate, check_stable_computation};
use pp_mc::{ExploreLimits, ReachabilityGraph};
use pp_protocol::{CountConfig, Protocol};

use crate::experiments::e09_verification::enumerate_profiles;
use crate::table::Table;
use crate::trial::{Backend, TrialRunner};

/// The bra-ket projection of a variant rule: exchanges only, no `out`
/// register. Sound for every rule because [`ExchangeRule::fires`] never
/// reads outputs. Theorem 3.4 is a statement about *this* projection — the
/// full dynamics admit out-register flip cycles in transient configurations
/// (broken by weak fairness, not by the potential), so stabilization across
/// all schedules must be checked here.
#[derive(Debug, Clone, Copy)]
struct BraKetVariant {
    k: u16,
    rule: ExchangeRule,
}

impl Protocol for BraKetVariant {
    type State = BraKet;
    type Input = Color;
    type Output = ();

    fn name(&self) -> &str {
        "braket-variant"
    }

    fn input(&self, input: &Color) -> BraKet {
        BraKet::self_loop(*input)
    }

    fn output(&self, _state: &BraKet) {}

    fn transition(&self, initiator: &BraKet, responder: &BraKet) -> (BraKet, BraKet) {
        if self.rule.fires(self.k, *initiator, *responder) {
            (
                BraKet::new(initiator.bra, responder.ket),
                BraKet::new(responder.bra, initiator.ket),
            )
        } else {
            (*initiator, *responder)
        }
    }
}

/// Parameters for E10.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of colors for the grid.
    pub k: u16,
    /// Population sizes to sweep.
    pub ns: Vec<usize>,
    /// Exploration limits per instance.
    pub limits: ExploreLimits,
    /// Worker threads for the per-instance model-checking fan-out.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 3,
            ns: vec![2, 3, 4, 5],
            limits: ExploreLimits::default(),
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            k: 3,
            ns: vec![2, 3],
            limits: ExploreLimits::default(),
            threads: 2,
        }
    }
}

#[derive(Default)]
struct RuleStats {
    instances: usize,
    always_stabilizes: usize,
    /// Instances where at least one silent configuration is reachable and
    /// *every* reachable silent configuration projects to the paper's
    /// predicted bra-ket multiset (under ties the `out` registers may
    /// freeze differently across schedules, so several silent full-state
    /// configurations with identical bra-kets are expected).
    matches_prediction: usize,
    stably_computes: usize,
    with_winner: usize,
}

fn profile_to_inputs(profile: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in profile.iter().enumerate() {
        for _ in 0..count {
            inputs.push(Color(color as u16));
        }
    }
    inputs
}

/// Runs E10 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E10 — exchange-rule ablation (model-checked grid)",
        &[
            "rule",
            "k",
            "instances",
            "exchanges stabilize on every schedule",
            "all exchange-stable terminals = paper prediction",
            "stably computes majority",
        ],
    );
    // The per-instance grid is embarrassingly parallel: enumerate the
    // instances up front and fan the model checking out through the trial
    // runner (instance indices stand in for seeds; the backend is unused).
    let mut instances: Vec<Vec<Color>> = Vec::new();
    for &n in &params.ns {
        for profile in enumerate_profiles(n, params.k) {
            let inputs = profile_to_inputs(&profile);
            if !inputs.is_empty() {
                instances.push(inputs);
            }
        }
    }
    let runner = TrialRunner::new(Backend::Count)
        .threads(params.threads)
        .seed_list((0..instances.len() as u64).collect());
    for rule in ExchangeRule::ALL {
        let protocol = VariantCircles::new(params.k, rule).expect("k >= 1");
        let braket_dynamics = BraKetVariant { k: params.k, rule };
        let outcomes = runner.run_with(|idx| {
            let inputs = &instances[idx as usize];
            // Bra-ket projection: Theorem 3.4 / Lemma 3.6 analogues.
            let braket_initial: CountConfig<BraKet> =
                inputs.iter().map(|c| BraKet::self_loop(*c)).collect();
            let braket_graph =
                ReachabilityGraph::explore(&braket_dynamics, &braket_initial, params.limits)
                    .expect("braket exploration failed");
            let always_stabilizes = changes_always_terminate(&braket_graph);
            let silent = braket_graph.silent_configs();
            let predicted = predicted_brakets(inputs, params.k).expect("valid");
            let matches_prediction = !silent.is_empty()
                && silent
                    .iter()
                    .all(|&cid| braket_graph.config(cid) == predicted);
            // Full dynamics: global-fairness BSCC correctness.
            let greedy = GreedyDecomposition::from_inputs(inputs, params.k).expect("valid");
            let stably_computes = greedy.winner().map(|mu| {
                let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
                let graph = ReachabilityGraph::explore(&protocol, &initial, params.limits)
                    .expect("exploration failed");
                check_stable_computation(&graph, &protocol, &mu).holds
            });
            (always_stabilizes, matches_prediction, stably_computes)
        });
        let mut stats = RuleStats::default();
        for (always_stabilizes, matches_prediction, stably_computes) in outcomes {
            stats.instances += 1;
            stats.always_stabilizes += usize::from(always_stabilizes);
            stats.matches_prediction += usize::from(matches_prediction);
            if let Some(holds) = stably_computes {
                stats.with_winner += 1;
                stats.stably_computes += usize::from(holds);
            }
        }
        table.push_row(vec![
            rule.id().to_string(),
            params.k.to_string(),
            stats.instances.to_string(),
            format!("{}/{}", stats.always_stabilizes, stats.instances),
            format!("{}/{}", stats.matches_prediction, stats.instances),
            format!("{}/{}", stats.stably_computes, stats.with_winner),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_rule_is_perfect_and_ablations_are_not() {
        let table = run(&Params::quick());
        assert_eq!(table.len(), ExchangeRule::ALL.len());
        // Row 0 is the paper's rule: full marks on every column.
        let paper = &table.rows()[0];
        assert_eq!(paper[0], "strict-min");
        assert_eq!(paper[3], format!("{}/{}", paper[2], paper[2]));
        assert_eq!(paper[4], format!("{}/{}", paper[2], paper[2]));
        // Always-swap must fail to stabilize on non-trivial instances.
        let always = table
            .rows()
            .iter()
            .find(|r| r[0] == "always")
            .expect("always row");
        let full: usize = always[2].parse().unwrap();
        let stabilizing: usize = always[3].split('/').next().unwrap().parse().unwrap();
        assert!(stabilizing < full, "always-swap unexpectedly stabilizes");
        // Non-strict must livelock somewhere too.
        let nonstrict = table
            .rows()
            .iter()
            .find(|r| r[0] == "nonstrict-min")
            .expect("nonstrict row");
        let ns_stab: usize = nonstrict[3].split('/').next().unwrap().parse().unwrap();
        assert!(
            ns_stab < full,
            "non-strict rule unexpectedly always stabilizes"
        );
    }
}
