//! E11 — out-of-model robustness: crash-and-restart faults, on both
//! engines.
//!
//! The population-protocol model has no failures, and Circles' correctness
//! proof leans on the global bra-ket invariant (Lemma 3.3) that a crashed
//! agent restarting as a fresh self-loop violates. This exploratory
//! experiment (not a paper claim — an adoption question) measures how the
//! protocol degrades: does it still stabilize? how often is the final
//! consensus still correct? does conservation ever recover?
//!
//! Two fault models run side by side over **matched crash schedules**
//! (identical `at_step` lists drawn from the shared hazard stream):
//!
//! - `indexed faults` — exact agent-level resets via
//!   [`run_with_faults_rng`] on the [`Simulation`](pp_protocol::Simulation)
//!   engine; the reference semantics, affordable only at small `n`.
//! - `count hazards` — anonymous unit-of-mass crashes via
//!   [`run_circles_hazards`] on the batched
//!   [`CountEngine`]; statistically equivalent at
//!   small `n` (the crash victim is a uniformly random agent either way) and
//!   the only practical model at `n = 10^9`, where the final table section
//!   sweeps it.
//!
//! Intuition for the observed shape: a restart removes one ket from
//! circulation and injects a duplicate self-ket. Stabilization survives (the
//! potential argument never needed conservation), but the terminal
//! configuration can gain a *wrong* self-loop, and with margin-1 races a
//! single well-timed crash can flip the winner.

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_extensions::faults::{run_with_faults_rng, Fault, FaultPlan};
use pp_extensions::hazards::{run_circles_hazards, HazardPlan, HazardReport};
use pp_protocol::{
    CountConfig, CountEngine, SparseActivity, UniformCountScheduler, UniformPairScheduler,
};
use rand::{RngCore, RngExt};

use crate::runner::{hazard_rng, seed_range, trial_rng};
use crate::table::Table;
use crate::trial::{Backend, TrialRunner};
use crate::workloads::{margin_workload, photo_finish_workload, shuffled, true_winner};

/// Parameters for E11.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size of the small-`n` dual-backend section.
    pub n: usize,
    /// Number of colors in the small-`n` section.
    pub k: u16,
    /// Fault counts to sweep.
    pub fault_counts: Vec<usize>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Population size of the large-`n` count-hazard section.
    pub hazard_n: u64,
    /// Number of colors in the large-`n` section.
    pub hazard_k: u16,
    /// Seeds for the large-`n` section (its trials are the expensive ones).
    pub hazard_seeds: u64,
    /// Interaction budget for the large-`n` section. Interactions scale
    /// with `n` (the count engine's *work* does not — it skips null steps),
    /// so this is far larger than `max_steps`.
    pub hazard_max_steps: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 96,
            k: 4,
            fault_counts: vec![0, 1, 2, 4, 8, 16],
            seeds: 48,
            max_steps: 200_000_000,
            threads: crate::runner::default_threads(),
            hazard_n: 1_000_000_000,
            hazard_k: 30,
            hazard_seeds: 4,
            hazard_max_steps: u64::MAX / 2,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 16,
            k: 3,
            fault_counts: vec![0, 2],
            seeds: 4,
            max_steps: 20_000_000,
            threads: 2,
            hazard_n: 20_000,
            hazard_k: 3,
            hazard_seeds: 2,
            hazard_max_steps: u64::MAX / 2,
        }
    }
}

/// The grading shared by both fault models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RobustnessOutcome {
    /// Reached silence within budget with every fault fired.
    pub stabilized: bool,
    /// Final consensus equals the original plurality winner.
    pub correct: bool,
    /// Bra-ket conservation held at the end.
    pub conserved: bool,
}

/// Draws a crash schedule — `count` steps uniform in `1..window` — from the
/// hazard stream. Both fault models consume exactly these draws first, which
/// is what makes their schedules *matched*: the indexed model then draws
/// agent indices, the count model then draws victims, from the same stream's
/// remaining positions.
fn crash_steps<H: RngCore>(rng: &mut H, count: usize, window: u64) -> Vec<u64> {
    (0..count).map(|_| rng.random_range(1..window)).collect()
}

/// One indexed-engine crash trial on stream `(sweep_seed, seed)`: the crash
/// schedule (and struck agents) come from
/// [`hazard_rng`], the trajectory from [`trial_rng`] — disjoint Philox
/// streams, so the schedule is thread-count- and sweep-order-insensitive
/// like every other trial input.
pub fn indexed_crash_trial(
    inputs: &[Color],
    k: u16,
    faults: usize,
    sweep_seed: u64,
    seed: u64,
    max_steps: u64,
) -> RobustnessOutcome {
    let n = inputs.len();
    let mut schedule = hazard_rng(sweep_seed, seed);
    let mut plan = FaultPlan::new();
    for at_step in crash_steps(&mut schedule, faults, 8 * n as u64) {
        plan.push(Fault {
            at_step,
            agent: schedule.random_range(0..n),
        });
    }
    let report = run_with_faults_rng(
        inputs,
        k,
        UniformPairScheduler::new(),
        trial_rng(sweep_seed, seed),
        &plan,
        max_steps,
    )
    .expect("fault trial failed");
    RobustnessOutcome {
        stabilized: report.stabilized,
        correct: report.correct,
        conserved: report.conserved_at_end,
    }
}

/// One count-engine crash trial on stream `(sweep_seed, seed)` over the
/// anonymous workload `counts`: same crash schedule as
/// [`indexed_crash_trial`] of the same key (the first `faults` hazard-stream
/// draws), anonymous unit-of-mass victims instead of agent indices.
pub fn count_crash_trial(
    counts: &[(Color, u64)],
    k: u16,
    faults: usize,
    sweep_seed: u64,
    seed: u64,
    max_steps: u64,
) -> HazardReport {
    let n: u64 = counts.iter().map(|&(_, c)| c).sum();
    let mut schedule = hazard_rng(sweep_seed, seed);
    let plan = HazardPlan::crashes(crash_steps(&mut schedule, faults, 8 * n));
    let protocol = CirclesProtocol::new(k).expect("valid k");
    let mut config: CountConfig<CirclesState> = CountConfig::new();
    for &(color, count) in counts {
        config.insert(
            CirclesState::initial(color),
            count.try_into().expect("count fits a usize"),
        );
    }
    let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
        &protocol,
        config,
        UniformCountScheduler::new(),
        trial_rng(sweep_seed, seed),
    );
    let truth = plurality_winner(counts);
    run_circles_hazards(&mut engine, truth, &plan, counts, &mut schedule, max_steps)
        .expect("hazard trial failed")
}

/// The unique plurality winner of an anonymous workload, or `None` on a tie.
fn plurality_winner(counts: &[(Color, u64)]) -> Option<Color> {
    let &(winner, best) = counts.iter().max_by_key(|&&(_, c)| c)?;
    let ties = counts.iter().filter(|&&(_, c)| c == best).count();
    (ties == 1).then_some(winner)
}

/// Collapses a shuffled input list into an anonymous `(color, count)`
/// workload for the count model.
fn histogram(inputs: &[Color]) -> Vec<(Color, u64)> {
    let mut counts: std::collections::BTreeMap<Color, u64> = std::collections::BTreeMap::new();
    for &c in inputs {
        *counts.entry(c).or_insert(0) += 1;
    }
    counts.into_iter().collect()
}

/// Runs E11 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E11 — crash-and-restart robustness, indexed faults vs count hazards (exploratory, out of model)",
        &[
            "model",
            "workload",
            "n",
            "faults",
            "seeds",
            "stabilized rate",
            "correct rate",
            "conservation intact rate",
        ],
    );
    let workloads = [
        (
            "margin 12%",
            shuffled(
                margin_workload(params.n, params.k, (params.n / 8).max(1)),
                3,
            ),
        ),
        (
            "photo finish",
            shuffled(photo_finish_workload(params.n, params.k), 3),
        ),
    ];
    let runner = TrialRunner::new(Backend::Indexed)
        .threads(params.threads)
        .max_steps(params.max_steps)
        .seed_list(seed_range(params.seeds));
    let push_rates = |table: &mut Table,
                      model: &str,
                      workload: &str,
                      n: u64,
                      faults: usize,
                      seeds: u64,
                      outcomes: &[RobustnessOutcome]| {
        let total = outcomes.len() as f64;
        let rate = |f: &dyn Fn(&RobustnessOutcome) -> bool| {
            outcomes.iter().filter(|o| f(o)).count() as f64 / total
        };
        table.push_row(vec![
            model.to_string(),
            workload.to_string(),
            n.to_string(),
            faults.to_string(),
            seeds.to_string(),
            format!("{:.2}", rate(&|o: &RobustnessOutcome| o.stabilized)),
            format!("{:.2}", rate(&|o: &RobustnessOutcome| o.correct)),
            format!("{:.2}", rate(&|o: &RobustnessOutcome| o.conserved)),
        ]);
    };
    // Small n: both fault models over matched crash schedules.
    for (name, inputs) in &workloads {
        let _ = true_winner(inputs, params.k); // validates the workload
        let counts = histogram(inputs);
        for &faults in &params.fault_counts {
            let indexed = runner.run_with(|seed| {
                indexed_crash_trial(inputs, params.k, faults, 0, seed, params.max_steps)
            });
            push_rates(
                &mut table,
                Backend::Indexed.name(),
                name,
                inputs.len() as u64,
                faults,
                params.seeds,
                &indexed,
            );
            let hazards = runner.run_with(|seed| {
                let r = count_crash_trial(&counts, params.k, faults, 0, seed, params.max_steps);
                RobustnessOutcome {
                    stabilized: r.stabilized,
                    correct: r.correct,
                    conserved: r.conserved_at_end,
                }
            });
            push_rates(
                &mut table,
                Backend::Count.name(),
                name,
                inputs.len() as u64,
                faults,
                params.seeds,
                &hazards,
            );
        }
    }
    // Large n: count hazards only — the whole point of the anonymous model.
    // The workload is near-unanimous (winner holds all but one unit per loser
    // color) rather than a thin margin: per-agent state changes are what the
    // count engine pays for, so a contested margin at `k = 30` costs Θ(n)
    // changes (~10^6 s at n = 10^9) while this shape settles in O(k²) changes
    // at any `n`. Degradation *rates* under contested margins are the small-n
    // section's job; this section proves the hazard machinery at full scale.
    let losers = u64::from(params.hazard_k) - 1;
    let mut hazard_counts = vec![(Color(0), params.hazard_n - losers)];
    hazard_counts.extend((1..params.hazard_k).map(|c| (Color(c), 1)));
    let hazard_runner = TrialRunner::new(Backend::Count)
        .threads(params.threads)
        .max_steps(params.hazard_max_steps)
        .seed_list(seed_range(params.hazard_seeds));
    for &faults in &params.fault_counts {
        let outcomes = hazard_runner.run_with(|seed| {
            let r = count_crash_trial(
                &hazard_counts,
                params.hazard_k,
                faults,
                1,
                seed,
                params.hazard_max_steps,
            );
            RobustnessOutcome {
                stabilized: r.stabilized,
                correct: r.correct,
                conserved: r.conserved_at_end,
            }
        });
        push_rates(
            &mut table,
            "count (large n)",
            "near-unanimous",
            params.hazard_n,
            faults,
            params.hazard_seeds,
            &outcomes,
        );
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_faults_is_perfect_on_both_models() {
        let table = run(&Params::quick());
        for row in table.rows() {
            if row[3] == "0" {
                assert_eq!(row[5], "1.00", "{row:?}");
                assert_eq!(row[6], "1.00", "{row:?}");
                assert_eq!(row[7], "1.00", "{row:?}");
            }
        }
    }

    #[test]
    fn rows_cover_models_workloads_and_fault_counts() {
        let p = Params::quick();
        let table = run(&p);
        // 2 fault models × 2 workloads × fault counts, plus the large-n
        // count-hazard sweep.
        assert_eq!(table.len(), (2 * 2 + 1) * p.fault_counts.len());
    }

    #[test]
    fn matched_schedules_share_their_at_steps() {
        // The first `faults` hazard-stream draws are the crash steps on both
        // models; drawing them twice from fresh streams must agree.
        let mut a = hazard_rng(0, 7);
        let mut b = hazard_rng(0, 7);
        assert_eq!(crash_steps(&mut a, 5, 800), crash_steps(&mut b, 5, 800));
        // And the hazard stream is disjoint from the trial stream.
        let mut t = trial_rng(0, 7);
        assert_ne!(crash_steps(&mut a, 5, 800), crash_steps(&mut t, 5, 800));
    }
}
