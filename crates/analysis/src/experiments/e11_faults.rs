//! E11 — out-of-model robustness: crash-and-restart faults.
//!
//! The population-protocol model has no failures, and Circles' correctness
//! proof leans on the global bra-ket invariant (Lemma 3.3) that a crashed
//! agent restarting as a fresh self-loop violates. This exploratory
//! experiment (not a paper claim — an adoption question) measures how the
//! protocol degrades: does it still stabilize? how often is the final
//! consensus still correct? does conservation ever recover?
//!
//! Intuition for the observed shape: a restart removes one ket from
//! circulation and injects a duplicate self-ket. Stabilization survives (the
//! potential argument never needed conservation), but the terminal
//! configuration can gain a *wrong* self-loop, and with margin-1 races a
//! single well-timed crash can flip the winner.

use circles_core::Color;
use pp_extensions::faults::{run_with_faults, Fault, FaultPlan};
use pp_protocol::UniformPairScheduler;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::runner::seed_range;
use crate::table::Table;
use crate::trial::{Backend, TrialRunner};
use crate::workloads::{margin_workload, photo_finish_workload, shuffled, true_winner};

/// Parameters for E11.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size.
    pub n: usize,
    /// Number of colors.
    pub k: u16,
    /// Fault counts to sweep.
    pub fault_counts: Vec<usize>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 96,
            k: 4,
            fault_counts: vec![0, 1, 2, 4, 8, 16],
            seeds: 48,
            max_steps: 200_000_000,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 16,
            k: 3,
            fault_counts: vec![0, 2],
            seeds: 4,
            max_steps: 20_000_000,
            threads: 2,
        }
    }
}

struct FaultTrialOutcome {
    stabilized: bool,
    correct: bool,
    conserved: bool,
}

fn one_trial(
    inputs: &[Color],
    k: u16,
    faults: usize,
    seed: u64,
    max_steps: u64,
) -> FaultTrialOutcome {
    // Workload generators may return slightly fewer agents than requested;
    // sample agents from the actual population.
    let n = inputs.len();
    // Faults strike at random agents, spread over the early mixing phase
    // (steps 1 .. 8n), where the invariant damage is most consequential.
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFA17);
    let mut plan = FaultPlan::new();
    for _ in 0..faults {
        plan.push(Fault {
            at_step: rng.random_range(1..(8 * n as u64)),
            agent: rng.random_range(0..n),
        });
    }
    let report = run_with_faults(
        inputs,
        k,
        UniformPairScheduler::new(),
        seed,
        &plan,
        max_steps,
    )
    .expect("fault trial failed");
    FaultTrialOutcome {
        stabilized: report.stabilized,
        correct: report.correct,
        conserved: report.conserved_at_end,
    }
}

/// Runs E11 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E11 — crash-and-restart robustness (exploratory, out of model)",
        &[
            "workload",
            "faults",
            "seeds",
            "stabilized rate",
            "correct rate",
            "conservation intact rate",
        ],
    );
    let workloads = [
        (
            "margin 12%",
            shuffled(
                margin_workload(params.n, params.k, (params.n / 8).max(1)),
                3,
            ),
        ),
        (
            "photo finish",
            shuffled(photo_finish_workload(params.n, params.k), 3),
        ),
    ];
    // Fault injection needs agent identities, so the trials run on the
    // indexed engine; the runner supplies the seed fan-out configuration.
    let runner = TrialRunner::new(Backend::Indexed)
        .threads(params.threads)
        .max_steps(params.max_steps)
        .seed_list(seed_range(params.seeds));
    for (name, inputs) in &workloads {
        let _ = true_winner(inputs, params.k); // validates the workload
        for &faults in &params.fault_counts {
            let outcomes =
                runner.run_with(|seed| one_trial(inputs, params.k, faults, seed, params.max_steps));
            let total = outcomes.len() as f64;
            let rate = |f: &dyn Fn(&FaultTrialOutcome) -> bool| {
                outcomes.iter().filter(|o| f(o)).count() as f64 / total
            };
            table.push_row(vec![
                name.to_string(),
                faults.to_string(),
                params.seeds.to_string(),
                format!("{:.2}", rate(&|o: &FaultTrialOutcome| o.stabilized)),
                format!("{:.2}", rate(&|o: &FaultTrialOutcome| o.correct)),
                format!("{:.2}", rate(&|o: &FaultTrialOutcome| o.conserved)),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_faults_is_perfect() {
        let table = run(&Params::quick());
        for row in table.rows() {
            if row[1] == "0" {
                assert_eq!(row[3], "1.00");
                assert_eq!(row[4], "1.00");
                assert_eq!(row[5], "1.00");
            }
        }
    }

    #[test]
    fn rows_cover_workloads_and_fault_counts() {
        let p = Params::quick();
        let table = run(&p);
        assert_eq!(table.len(), 2 * p.fault_counts.len());
    }
}
