//! E2 — convergence versus population size `n` under the uniform-random
//! scheduler.
//!
//! Paper anchor: Theorem 3.7 guarantees eventual correctness but proves no
//! time bound; this experiment characterizes the empirical interaction
//! complexity (total and parallel time — interactions divided by `n`) and
//! doubles as an always-correct check at scale (the `correct` column must
//! read `1.00`).

use crate::plot::LinePlot;
use crate::stats::{log_log_slope, Summary};
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialRunner};
use crate::workloads::{margin_workload, true_winner};
use circles_core::CirclesProtocol;

/// Parameters for E2.
#[derive(Debug, Clone)]
pub struct Params {
    /// Color counts to sweep.
    pub ks: Vec<u16>,
    /// Population sizes to sweep.
    pub ns: Vec<usize>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Winner margin as a fraction of `n` (at least 1 agent).
    pub margin_fraction: f64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Which engine executes the trials. The count backend is the default —
    /// it is the only one that scales past `n ≈ 10^4`; the indexed backend
    /// is kept selectable for cross-checking at small `n`.
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ks: vec![2, 4, 8],
            ns: vec![8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096],
            seeds: 32,
            margin_fraction: 0.1,
            max_steps: 2_000_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Count,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            ks: vec![2, 3],
            ns: vec![8, 16, 32],
            seeds: 4,
            margin_fraction: 0.2,
            max_steps: 50_000_000,
            threads: 2,
            backend: Backend::Count,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Runs E2 and returns the table plus the consensus-scaling figure (log-log
/// interactions-to-consensus vs `n`, one series per `k`).
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let table = run(params);
    let mut figure = LinePlot::new("E2: interactions to consensus vs n")
        .axis_labels("n", "interactions to consensus")
        .log_x()
        .log_y();
    for &k in &params.ks {
        let points: Vec<(f64, f64)> = table
            .rows()
            .iter()
            .filter(|row| row[0] == k.to_string() && row[1] != "slope")
            .map(|row| {
                (
                    row[1].parse().expect("n column"),
                    row[5].parse().expect("consensus column"),
                )
            })
            .collect();
        if !points.is_empty() {
            figure = figure.with_series(format!("k={k}"), points);
        }
    }
    (table, vec![("e02_scaling".to_string(), figure)])
}

/// Runs E2 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        &format!(
            "E2 — convergence vs n (uniform-random scheduler, {} backend)",
            params.backend.name()
        ),
        &[
            "k",
            "n",
            "seeds",
            "silence mean",
            "silence std",
            "consensus mean",
            "parallel time (consensus/n)",
            "correct",
        ],
    );
    for &k in &params.ks {
        let mut scaling_points = Vec::new();
        for &n in &params.ns {
            // A margin workload needs at least one agent per loser plus the
            // margin; skip degenerate (n, k) combinations.
            if n < 4 * usize::from(k) {
                continue;
            }
            let margin = ((n as f64 * params.margin_fraction) as usize).max(1);
            let inputs = margin_workload(n, k, margin);
            let protocol = CirclesProtocol::new(k).expect("k >= 1");
            let expected = true_winner(&inputs, k);
            let results = TrialRunner::new(params.backend)
                .seeds(params.seeds)
                .threads(params.threads)
                .max_steps(params.max_steps)
                .run(&protocol, &inputs, expected);
            let silences: Vec<f64> = results.iter().map(|r| r.steps_to_silence as f64).collect();
            let consensuses: Vec<f64> = results
                .iter()
                .map(|r| r.steps_to_consensus as f64)
                .collect();
            let correct_rate =
                results.iter().filter(|r| r.correct).count() as f64 / results.len() as f64;
            let silence = Summary::from_samples(&silences);
            let consensus = Summary::from_samples(&consensuses);
            scaling_points.push((n as f64, consensus.mean.max(1.0)));
            table.push_row(vec![
                k.to_string(),
                n.to_string(),
                params.seeds.to_string(),
                fmt_f64(silence.mean),
                fmt_f64(silence.std),
                fmt_f64(consensus.mean),
                fmt_f64(consensus.mean / n as f64),
                format!("{correct_rate:.2}"),
            ]);
        }
        if scaling_points.len() >= 2 {
            let slope = log_log_slope(&scaling_points);
            table.push_row(vec![
                k.to_string(),
                "slope".to_string(),
                "-".to_string(),
                "-".to_string(),
                "-".to_string(),
                format!("n^{slope:.2}"),
                "-".to_string(),
                "-".to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_correct_at_small_scale_on_both_backends() {
        for backend in Backend::ALL {
            let table = run(&Params::quick().with_backend(backend));
            for row in table.rows() {
                if row[1] != "slope" {
                    assert_eq!(
                        row[7],
                        "1.00",
                        "incorrect {} run in row {row:?}",
                        backend.name()
                    );
                }
            }
        }
    }

    #[test]
    fn has_rows_for_each_feasible_configuration_plus_slopes() {
        let p = Params::quick();
        let table = run(&p);
        let feasible: usize =
            p.ks.iter()
                .map(|&k| p.ns.iter().filter(|&&n| n >= 4 * usize::from(k)).count())
                .sum();
        assert_eq!(table.len(), feasible + p.ks.len());
    }

    #[test]
    fn figure_has_one_series_per_k() {
        let p = Params::quick();
        let (_, figures) = run_with_figures(&p);
        let svg = figures[0].1.to_svg();
        for k in &p.ks {
            assert!(svg.contains(&format!("k={k}")), "missing series for k={k}");
        }
    }
}
