//! E5 — always-correctness across the weakly fair scheduler family, and the
//! price of adversarial fairness.
//!
//! Paper anchor: Definition 1.2 and Theorem 3.7 — Circles must reach the
//! correct output under *every* weakly fair scheduler. The `correct` column
//! must read `1.00` for all schedulers; the interesting signal is how much
//! slower the lazy adversary and the clustered bottleneck make convergence.

use circles_core::CirclesProtocol;
use pp_schedulers::{
    ClusteredScheduler, LazyAdversaryScheduler, RoundRobinScheduler, ShuffledRoundsScheduler,
};

use crate::runner::seed_range;
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{run_trial, Backend, TrialResult, TrialRunner};
use crate::workloads::{photo_finish_workload, shuffled, true_winner};

/// Parameters for E5.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size (kept modest: the lazy adversary is O(n²) per step).
    pub n: usize,
    /// Color counts to test.
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Backend for the `uniform` rows. The named schedulers are indexed-only
    /// (they pick *agent* pairs), so their rows always run on the indexed
    /// engine regardless of this choice — see [`SCHEDULERS`].
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 64,
            ks: vec![3, 8],
            seeds: 16,
            max_steps: 200_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Indexed,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 10,
            ks: vec![3],
            seeds: 3,
            max_steps: 10_000_000,
            threads: 2,
            backend: Backend::Indexed,
        }
    }

    /// The same parameters on another backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

fn trial_for(
    scheduler_name: &str,
    protocol: &CirclesProtocol,
    inputs: &[circles_core::Color],
    expected: circles_core::Color,
    seed: u64,
    max_steps: u64,
    backend: Backend,
) -> TrialResult {
    match scheduler_name {
        // The uniform-random row is engine-agnostic: it dispatches through
        // the backend like every ported experiment.
        "uniform" => backend.trial(protocol, inputs, seed, expected, max_steps),
        "round-robin" => run_trial(
            protocol,
            inputs,
            RoundRobinScheduler::new(),
            seed,
            expected,
            max_steps,
        ),
        "shuffled-rounds" => run_trial(
            protocol,
            inputs,
            ShuffledRoundsScheduler::new(),
            seed,
            expected,
            max_steps,
        ),
        "lazy-adversary" => {
            let n = inputs.len();
            let window = (n * (n - 1)) as u64;
            run_trial(
                protocol,
                inputs,
                LazyAdversaryScheduler::new(*protocol, window),
                seed,
                expected,
                max_steps,
            )
        }
        "clustered(16)" => run_trial(
            protocol,
            inputs,
            ClusteredScheduler::new(16),
            seed,
            expected,
            max_steps,
        ),
        "clustered(256)" => run_trial(
            protocol,
            inputs,
            ClusteredScheduler::new(256),
            seed,
            expected,
            max_steps,
        ),
        other => panic!("unknown scheduler {other}"),
    }
    .expect("trial failed")
}

/// The scheduler names E5 sweeps. All but `uniform` are *indexed-only*:
/// they schedule identified agent pairs, which the anonymous count engine
/// cannot express, so [`run`] dispatches them to the indexed engine
/// whatever `Params::backend` says.
pub const SCHEDULERS: [&str; 6] = [
    "uniform",
    "round-robin",
    "shuffled-rounds",
    "lazy-adversary",
    "clustered(16)",
    "clustered(256)",
];

/// Deterministic schedulers produce identical runs for every seed; running
/// them once is enough.
fn is_deterministic(scheduler: &str) -> bool {
    matches!(scheduler, "round-robin" | "lazy-adversary")
}

/// Runs E5 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E5 — scheduler family: correctness and slowdown",
        &[
            "k",
            "scheduler",
            "seeds",
            "consensus mean",
            "consensus max",
            "slowdown vs uniform",
            "stabilized",
            "correct",
        ],
    );
    for &k in &params.ks {
        let inputs = shuffled(photo_finish_workload(params.n, k), 1234);
        let protocol = CirclesProtocol::new(k).expect("k >= 1");
        let expected = true_winner(&inputs, k);
        let mut uniform_mean = None;
        for scheduler in SCHEDULERS {
            let seeds = if is_deterministic(scheduler) {
                seed_range(1)
            } else {
                seed_range(params.seeds)
            };
            let runner = TrialRunner::new(params.backend)
                .threads(params.threads)
                .seed_list(seeds.clone());
            let results = runner.run_with(|seed| {
                trial_for(
                    scheduler,
                    &protocol,
                    &inputs,
                    expected,
                    seed,
                    params.max_steps,
                    params.backend,
                )
            });
            let consensus: Vec<f64> = results
                .iter()
                .map(|r| r.steps_to_consensus as f64)
                .collect();
            let summary = Summary::from_samples(&consensus);
            let stabilized = results.iter().filter(|r| r.stabilized).count();
            let correct = results.iter().filter(|r| r.correct).count();
            if scheduler == "uniform" {
                uniform_mean = Some(summary.mean.max(1.0));
            }
            let slowdown =
                uniform_mean.map_or("-".to_string(), |u| format!("{:.2}x", summary.mean / u));
            table.push_row(vec![
                k.to_string(),
                scheduler.to_string(),
                seeds.len().to_string(),
                fmt_f64(summary.mean),
                fmt_f64(summary.max),
                slowdown,
                format!("{}/{}", stabilized, results.len()),
                format!("{:.2}", correct as f64 / results.len() as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_scheduler_is_correct() {
        for backend in Backend::ALL {
            let p = Params::quick().with_backend(backend);
            let table = run(&p);
            assert_eq!(table.len(), p.ks.len() * SCHEDULERS.len());
            for row in table.rows() {
                assert_eq!(
                    row[7],
                    "1.00",
                    "scheduler {} failed on {}: {row:?}",
                    row[1],
                    backend.name()
                );
            }
        }
    }
}
