//! E4 — stabilization work: ket-exchange counts and the energy descent.
//!
//! Paper anchor: Theorem 3.4 proves the number of ket exchanges is finite
//! via an ordinal potential, with no quantitative bound. This experiment
//! measures the actual exchange counts, reports the combinatorial
//! descent-chain bound for contrast, and quantifies the energy-minimization
//! narrative: the *lexicographic* potential must strictly decrease at every
//! exchange (asserted), while the *total* energy may transiently rise — we
//! count how often it does.

use circles_core::potential::{descent_chain_bound, weight_vector};
use circles_core::prediction::braket_config_of_population;
use circles_core::{energy, BraKet, CirclesProtocol, CirclesState};
use pp_protocol::{CountConfig, Population};

use crate::runner::seed_range;
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialRunner};
use crate::workloads::{photo_finish_workload, shuffled};

/// Parameters for E4.
#[derive(Debug, Clone)]
pub struct Params {
    /// `(n, k)` grid.
    pub grid: Vec<(usize, u16)>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Simulation backend observed ([`Backend::run_observed`] serves both:
    /// inline observation on the indexed engine, change-trace replay on the
    /// count engine).
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            grid: vec![
                (16, 4),
                (32, 4),
                (64, 4),
                (128, 4),
                (256, 4),
                (512, 4),
                (64, 2),
                (64, 8),
                (64, 16),
                (64, 32),
            ],
            seeds: 16,
            max_steps: 500_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Indexed,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            grid: vec![(12, 3), (24, 3), (12, 4)],
            seeds: 3,
            max_steps: 10_000_000,
            threads: 2,
            backend: Backend::Indexed,
        }
    }

    /// The same parameters on another backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Per-run measurements.
struct ExchangeRun {
    exchanges: u64,
    energy_rises: u64,
    final_energy: u64,
    potential_violations: u64,
}

fn one_run(n: usize, k: u16, seed: u64, max_steps: u64, backend: Backend) -> ExchangeRun {
    let protocol = CirclesProtocol::new(k).expect("k >= 1");
    let inputs = shuffled(photo_finish_workload(n, k), seed);
    let population = Population::from_inputs(&protocol, &inputs);

    let mut brakets: CountConfig<BraKet> = braket_config_of_population(&population);
    let mut potential = weight_vector(&brakets, k);
    let mut last_energy = energy::total_energy(&brakets, k);
    let mut exchanges = 0u64;
    let mut energy_rises = 0u64;
    let mut potential_violations = 0u64;

    let observer = |before_i: &CirclesState,
                    before_j: &CirclesState,
                    after_i: &CirclesState,
                    after_j: &CirclesState| {
        let ket_moved =
            before_i.braket.ket != after_i.braket.ket || before_j.braket.ket != after_j.braket.ket;
        if !ket_moved {
            return;
        }
        exchanges += 1;
        brakets.transfer(&before_i.braket, after_i.braket);
        brakets.transfer(&before_j.braket, after_j.braket);
        // The lexicographic potential (Theorem 3.4) must strictly decrease.
        let next_potential = weight_vector(&brakets, k);
        if next_potential >= potential {
            potential_violations += 1;
        }
        potential = next_potential;
        // The *total* energy is allowed to rise transiently; count rises.
        let next_energy = energy::total_energy(&brakets, k);
        if next_energy > last_energy {
            energy_rises += 1;
        }
        last_energy = next_energy;
    };
    let outcome = backend
        .run_observed(&protocol, &inputs, seed, max_steps, observer)
        .expect("framework error");
    assert!(outcome.stabilized, "run did not stabilize within budget");

    ExchangeRun {
        exchanges,
        energy_rises,
        final_energy: last_energy,
        potential_violations,
    }
}

/// Runs E4 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E4 — ket exchanges and energy descent",
        &[
            "n",
            "k",
            "exchanges mean",
            "exchanges max",
            "exchanges / n",
            "descent-chain bound",
            "energy rises mean",
            "final energy = predicted",
            "potential violations",
        ],
    );
    let runner = TrialRunner::new(params.backend)
        .threads(params.threads)
        .seed_list(seed_range(params.seeds));
    for &(n, k) in &params.grid {
        let runs = runner.run_with(|seed| one_run(n, k, seed, params.max_steps, params.backend));
        let counts: Vec<f64> = runs.iter().map(|r| r.exchanges as f64).collect();
        let rises: Vec<f64> = runs.iter().map(|r| r.energy_rises as f64).collect();
        let summary = Summary::from_samples(&counts);
        let rises_summary = Summary::from_samples(&rises);
        let violations: u64 = runs.iter().map(|r| r.potential_violations).sum();
        let predicted_energy = {
            let inputs = photo_finish_workload(n, k);
            energy::terminal_energy(&inputs, k).expect("valid workload")
        };
        let all_match = runs.iter().all(|r| r.final_energy == predicted_energy);
        let bound = descent_chain_bound(n, k);
        table.push_row(vec![
            n.to_string(),
            k.to_string(),
            fmt_f64(summary.mean),
            fmt_f64(summary.max),
            fmt_f64(summary.mean / n as f64),
            if bound == u128::MAX {
                ">= 2^128".to_string()
            } else {
                format!("{:.3e}", bound as f64)
            },
            fmt_f64(rises_summary.mean),
            all_match.to_string(),
            violations.to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exchanges_are_bounded_and_potential_monotone() {
        for backend in Backend::ALL {
            let table = run(&Params::quick().with_backend(backend));
            for row in table.rows() {
                assert_eq!(
                    row[8],
                    "0",
                    "{}: potential violated: {row:?}",
                    backend.name()
                );
                assert_eq!(
                    row[7],
                    "true",
                    "{}: energy mismatch: {row:?}",
                    backend.name()
                );
            }
        }
    }
}
