//! E3 — convergence versus the number of colors `k` at fixed `n`.
//!
//! Circles' state space grows as `k³`, but how does *time* respond to more
//! colors? More colors mean longer circles to assemble (`⋃ f(G_p)` has
//! arcs spanning more distinct colors) but also fewer agents per color.

use crate::runner::{run_seeded, seed_range};
use crate::stats::{log_log_slope, Summary};
use crate::table::{fmt_f64, Table};
use crate::trial::run_count_trial;
use crate::workloads::{margin_workload, photo_finish_workload, true_winner};
use circles_core::CirclesProtocol;

/// Parameters for E3.
#[derive(Debug, Clone)]
pub struct Params {
    /// Fixed population size.
    pub n: usize,
    /// Color counts to sweep.
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1024,
            ks: vec![2, 3, 4, 6, 8, 12, 16, 24, 32],
            seeds: 32,
            max_steps: 2_000_000_000,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 48,
            ks: vec![2, 3, 4],
            seeds: 4,
            max_steps: 50_000_000,
            threads: 2,
        }
    }
}

/// Runs E3 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E3 — convergence vs k (fixed n, uniform-random scheduler)",
        &[
            "k",
            "n",
            "workload",
            "seeds",
            "silence mean",
            "consensus mean",
            "consensus p90",
            "correct",
        ],
    );
    let mut scaling_points = Vec::new();
    for &k in &params.ks {
        for (label, inputs) in [
            (
                "margin 10%",
                margin_workload(params.n, k, (params.n / 10).max(1)),
            ),
            ("photo finish", photo_finish_workload(params.n, k)),
        ] {
            let protocol = CirclesProtocol::new(k).expect("k >= 1");
            let expected = true_winner(&inputs, k);
            let results = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
                run_count_trial(&protocol, &inputs, seed, expected, params.max_steps)
                    .expect("trial failed")
            });
            let consensuses: Vec<f64> = results
                .iter()
                .map(|r| r.steps_to_consensus as f64)
                .collect();
            let silences: Vec<f64> = results.iter().map(|r| r.steps_to_silence as f64).collect();
            let correct_rate =
                results.iter().filter(|r| r.correct).count() as f64 / results.len() as f64;
            let consensus = Summary::from_samples(&consensuses);
            let silence = Summary::from_samples(&silences);
            if label == "margin 10%" {
                scaling_points.push((f64::from(k), consensus.mean.max(1.0)));
            }
            table.push_row(vec![
                k.to_string(),
                params.n.to_string(),
                label.to_string(),
                params.seeds.to_string(),
                fmt_f64(silence.mean),
                fmt_f64(consensus.mean),
                fmt_f64(consensus.p90),
                format!("{correct_rate:.2}"),
            ]);
        }
    }
    if scaling_points.len() >= 2 {
        let slope = log_log_slope(&scaling_points);
        table.push_row(vec![
            "slope".to_string(),
            "-".to_string(),
            "margin 10%".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("k^{slope:.2}"),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_correct_and_shaped() {
        let p = Params::quick();
        let table = run(&p);
        // Two workloads per k plus one slope row.
        assert_eq!(table.len(), 2 * p.ks.len() + 1);
        for row in table.rows() {
            if row[0] != "slope" {
                assert_eq!(row[7], "1.00");
            }
        }
    }
}
