//! E3 — convergence versus the number of colors `k` at fixed `n`.
//!
//! Circles' state space grows as `k³`, but how does *time* respond to more
//! colors? More colors mean longer circles to assemble (`⋃ f(G_p)` has
//! arcs spanning more distinct colors) but also fewer agents per color.
//!
//! The grid reaches `k = 50` (125 000 states): per-seed discovery at that
//! size is paid through the color-orbit quotient — the engine classifies
//! one canonical pair per orbit and expands the rest mechanically — so the
//! sweep's transition bill stays `O(k⁵)`, not `O(k⁶)`.

use crate::stats::{log_log_slope, Summary};
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialRunner};
use crate::workloads::{margin_workload, photo_finish_workload, true_winner};
use circles_core::CirclesProtocol;

/// Parameters for E3.
#[derive(Debug, Clone)]
pub struct Params {
    /// Fixed population size.
    pub n: usize,
    /// Color counts to sweep.
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Simulation engine running the trials.
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 1024,
            ks: vec![2, 3, 4, 6, 8, 12, 16, 24, 32, 40, 50],
            seeds: 32,
            max_steps: 2_000_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Count,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 48,
            ks: vec![2, 3, 4],
            seeds: 4,
            max_steps: 50_000_000,
            threads: 2,
            backend: Backend::Count,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// Runs E3 and returns the table.
pub fn run(params: &Params) -> Table {
    let title = format!(
        "E3 — convergence vs k (fixed n, uniform-random scheduler, {} backend)",
        params.backend.name()
    );
    let mut table = Table::new(
        &title,
        &[
            "k",
            "n",
            "workload",
            "seeds",
            "silence mean",
            "consensus mean",
            "consensus p90",
            "correct",
        ],
    );
    // One warm runner per k: the high-k sweeps are exactly where repeated
    // per-seed slot discovery dominates, so both workloads of a k share a
    // transition table through the warm trial path.
    let runner = TrialRunner::new(params.backend)
        .threads(params.threads)
        .max_steps(params.max_steps)
        .seeds(params.seeds);
    let mut scaling_points = Vec::new();
    for &k in &params.ks {
        let protocol = CirclesProtocol::new(k).expect("k >= 1");
        let shared = pp_protocol::TransitionTable::new();
        for (label, inputs) in [
            (
                "margin 10%",
                margin_workload(params.n, k, (params.n / 10).max(1)),
            ),
            ("photo finish", photo_finish_workload(params.n, k)),
        ] {
            let expected = true_winner(&inputs, k);
            let results = match params.backend {
                Backend::Count => runner.run_with_table(&protocol, &inputs, expected, &shared),
                Backend::Indexed => runner.run(&protocol, &inputs, expected),
            };
            let consensuses: Vec<f64> = results
                .iter()
                .map(|r| r.steps_to_consensus as f64)
                .collect();
            let silences: Vec<f64> = results.iter().map(|r| r.steps_to_silence as f64).collect();
            let correct_rate =
                results.iter().filter(|r| r.correct).count() as f64 / results.len() as f64;
            let consensus = Summary::from_samples(&consensuses);
            let silence = Summary::from_samples(&silences);
            if label == "margin 10%" {
                scaling_points.push((f64::from(k), consensus.mean.max(1.0)));
            }
            table.push_row(vec![
                k.to_string(),
                params.n.to_string(),
                label.to_string(),
                params.seeds.to_string(),
                fmt_f64(silence.mean),
                fmt_f64(consensus.mean),
                fmt_f64(consensus.p90),
                format!("{correct_rate:.2}"),
            ]);
        }
    }
    if scaling_points.len() >= 2 {
        let slope = log_log_slope(&scaling_points);
        table.push_row(vec![
            "slope".to_string(),
            "-".to_string(),
            "margin 10%".to_string(),
            "-".to_string(),
            "-".to_string(),
            format!("k^{slope:.2}"),
            "-".to_string(),
            "-".to_string(),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_correct_and_shaped() {
        let p = Params::quick();
        let table = run(&p);
        // Two workloads per k plus one slope row.
        assert_eq!(table.len(), 2 * p.ks.len() + 1);
        for row in table.rows() {
            if row[0] != "slope" {
                assert_eq!(row[7], "1.00");
            }
        }
    }

    #[test]
    fn indexed_backend_is_correct_too() {
        let p = Params::quick().with_backend(Backend::Indexed);
        let table = run(&p);
        assert_eq!(table.len(), 2 * p.ks.len() + 1);
        for row in table.rows() {
            if row[0] != "slope" {
                assert_eq!(row[7], "1.00");
            }
        }
        assert!(table.title().contains("indexed"));
    }
}
