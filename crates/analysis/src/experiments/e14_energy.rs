//! E14 — energy descent in continuous time, with its closed-form floor.
//!
//! Paper anchor: the "minimizing energy" framing. Reading each bra-ket's
//! weight as bond energy, the initial all-self-loop configuration carries
//! energy `k` per agent, and the predicted terminal configuration
//! (Lemma 3.6) carries exactly `k·c_max/n` per agent — because every greedy
//! set's circle `f(G_p)` has total arc weight exactly `k` (the arcs of a
//! circle over `Z_k` wrap once), and there are `q = c_max` circles. The
//! experiment tracks per-agent energy along stochastic (SSA) runs and the
//! mean-field ODE and checks both settle on that floor. Total energy is
//! *not* the protocol's Lyapunov function (the lexicographic potential is);
//! transient upticks along sample paths are expected and recorded.

use circles_core::{weight, CirclesProtocol, CirclesState, Color};
use pp_crn::{ode_density_trajectory, ssa_density_trajectory, ReactionNetwork};
use pp_protocol::{CountConfig, CountEngine, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::experiments::e13_meanfield::profile_counts;
use crate::plot::LinePlot;
use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};

/// Which stochastic sampler generates the finite-`n` energy trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StochasticBackend {
    /// Exact continuous-time SSA (Gillespie) runs on the reaction network.
    Ssa,
    /// The discrete-time batched count engine, sampled at parallel-time
    /// grid points (`t·n` interactions). Scales to much larger `n` than the
    /// SSA because silent stretches are skipped.
    Count,
}

impl StochasticBackend {
    /// Stable series label used in tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            StochasticBackend::Ssa => "SSA",
            StochasticBackend::Count => "count-engine",
        }
    }
}

/// Parameters for E14.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of colors.
    pub k: u16,
    /// Initial density profile (normalized internally).
    pub profile: Vec<f64>,
    /// Population sizes for the stochastic runs.
    pub ns: Vec<usize>,
    /// Stochastic runs per population size.
    pub seeds: u64,
    /// Horizon in parallel-time units.
    pub t_end: f64,
    /// Grid spacing.
    pub dt_grid: f64,
    /// ODE integration step.
    pub dt_ode: f64,
    /// Worker threads.
    pub threads: usize,
    /// Stochastic sampler for the finite-`n` series.
    pub backend: StochasticBackend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 4,
            profile: vec![0.4, 0.3, 0.2, 0.1],
            ns: vec![256, 4096],
            seeds: 8,
            t_end: 12.0,
            dt_grid: 0.5,
            dt_ode: 0.01,
            threads: crate::runner::default_threads(),
            backend: StochasticBackend::Ssa,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            k: 3,
            profile: vec![0.5, 0.3, 0.2],
            ns: vec![128],
            seeds: 3,
            t_end: 8.0,
            dt_grid: 1.0,
            dt_ode: 0.02,
            threads: 2,
            backend: StochasticBackend::Ssa,
        }
    }

    /// The same preset on the other stochastic backend.
    pub fn with_backend(mut self, backend: StochasticBackend) -> Self {
        self.backend = backend;
        self
    }
}

fn grid(t_end: f64, dt: f64) -> Vec<f64> {
    let steps = (t_end / dt).round() as usize;
    (0..=steps).map(|i| i as f64 * dt).collect()
}

/// Per-agent energy of an anonymous configuration.
fn energy_of_config(k: u16, config: &CountConfig<CirclesState>, n: usize) -> f64 {
    config
        .iter()
        .map(|(s, c)| f64::from(weight(k, s.braket)) * c as f64)
        .sum::<f64>()
        / n as f64
}

/// Per-agent energy of a density row.
fn energy_of_row(network: &ReactionNetwork<CirclesState>, k: u16, row: &[f64]) -> f64 {
    network
        .species()
        .iter()
        .map(|(id, s)| f64::from(weight(k, s.braket)) * row[id as usize])
        .sum()
}

/// Runs E14 and returns the table plus the energy-descent figure.
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let protocol = CirclesProtocol::new(params.k).expect("k >= 1");
    let support: Vec<CirclesState> = (0..params.k).map(|i| protocol.input(&Color(i))).collect();
    let network =
        ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).expect("closure fits");
    let times = grid(params.t_end, params.dt_grid);

    // Closed-form terminal energy per agent: k · p_max (q = c_max circles of
    // total weight k each).
    let total: f64 = params.profile.iter().sum();
    let p_max = params.profile.iter().fold(0.0f64, |m, &p| m.max(p / total));
    let floor = f64::from(params.k) * p_max;

    let mut table = Table::new(
        "E14 — per-agent energy over parallel time (floor = k·p_max)",
        &[
            "series",
            "n",
            "initial",
            "final",
            "max uptick",
            "floor",
            "final/floor",
        ],
    );
    let mut figure = LinePlot::new("E14: energy descent, SSA vs mean-field")
        .axis_labels("parallel time", "energy per agent");

    // Mean-field trajectory.
    {
        let x0: Vec<f64> = {
            let counts = profile_counts(1_000_000, &params.profile);
            let mut initial = CountConfig::new();
            for (i, &c) in counts.iter().enumerate() {
                initial.insert(support[i], c);
            }
            network.densities(&network.counts_from_config(&initial).expect("known species"))
        };
        let ode = ode_density_trajectory(&network, x0, &times, params.dt_ode).expect("valid grid");
        let energies: Vec<f64> = ode
            .rows
            .iter()
            .map(|row| energy_of_row(&network, params.k, row))
            .collect();
        let uptick = max_uptick(&energies);
        let last = *energies.last().expect("nonempty grid");
        table.push_row(vec![
            "mean-field ODE".to_string(),
            "∞".to_string(),
            fmt_f64(energies[0]),
            fmt_f64(last),
            fmt_f64(uptick),
            fmt_f64(floor),
            fmt_f64(last / floor),
        ]);
        figure = figure.with_series(
            "mean-field ODE",
            times.iter().copied().zip(energies).collect(),
        );
    }

    // Stochastic trajectories.
    for &n in &params.ns {
        let counts = profile_counts(n, &params.profile);
        let mut initial = CountConfig::new();
        for (i, &c) in counts.iter().enumerate() {
            initial.insert(support[i], c);
        }
        let energy_rows = match params.backend {
            StochasticBackend::Ssa => {
                run_seeded(&seed_range(params.seeds), params.threads, |seed| {
                    let mut rng = StdRng::seed_from_u64(seed);
                    let traj =
                        ssa_density_trajectory(&network, &initial, &mut rng, &times, u64::MAX)
                            .expect("ssa trajectory");
                    traj.rows
                        .iter()
                        .map(|row| energy_of_row(&network, params.k, row))
                        .collect::<Vec<f64>>()
                })
            }
            StochasticBackend::Count => {
                // One interaction per `1/n` parallel time (the SSA fires at
                // total rate `n`), so grid time `t` is `t·n` interactions.
                run_seeded(&seed_range(params.seeds), params.threads, |seed| {
                    let mut engine = CountEngine::from_config(&protocol, initial.clone(), seed);
                    times
                        .iter()
                        .map(|&t| {
                            let target = (t * n as f64).round() as u64;
                            engine.advance_to(target).expect("n >= 2");
                            energy_of_config(params.k, &engine.config(), n)
                        })
                        .collect::<Vec<f64>>()
                })
            }
        };
        // Per-grid-point mean across seeds.
        let mean_curve: Vec<f64> = (0..times.len())
            .map(|i| {
                Summary::from_samples(&energy_rows.iter().map(|e| e[i]).collect::<Vec<f64>>()).mean
            })
            .collect();
        let mean_uptick = Summary::from_samples(
            &energy_rows
                .iter()
                .map(|e| max_uptick(e))
                .collect::<Vec<f64>>(),
        )
        .mean;
        let last = *mean_curve.last().expect("nonempty grid");
        table.push_row(vec![
            params.backend.label().to_string(),
            n.to_string(),
            fmt_f64(mean_curve[0]),
            fmt_f64(last),
            fmt_f64(mean_uptick),
            fmt_f64(floor),
            fmt_f64(last / floor),
        ]);
        figure = figure.with_series(
            format!("{} n={n}", params.backend.label()),
            times.iter().copied().zip(mean_curve).collect(),
        );
    }

    (table, vec![("e14_energy".to_string(), figure)])
}

/// Largest single-interval increase along a curve (0 for monotone descent).
fn max_uptick(curve: &[f64]) -> f64 {
    curve
        .windows(2)
        .map(|w| (w[1] - w[0]).max(0.0))
        .fold(0.0, f64::max)
}

/// Runs E14 and returns the table.
pub fn run(params: &Params) -> Table {
    run_with_figures(params).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uptick_of_monotone_descent_is_zero() {
        assert_eq!(max_uptick(&[4.0, 3.0, 2.0, 2.0]), 0.0);
        assert_eq!(max_uptick(&[4.0, 3.0, 3.5, 2.0]), 0.5);
    }

    #[test]
    fn energy_settles_on_the_closed_form_floor() {
        for backend in [StochasticBackend::Ssa, StochasticBackend::Count] {
            let (table, figures) = run_with_figures(&Params::quick().with_backend(backend));
            // k = 3, p_max = 0.5 ⇒ floor = 1.5; initial = k = 3.
            for row in table.rows() {
                let initial: f64 = row[2].parse().unwrap();
                let ratio: f64 = row[6].parse().unwrap();
                assert!(
                    (initial - 3.0).abs() < 0.05,
                    "initial energy must be ~k ({backend:?}): {row:?}"
                );
                assert!(
                    (ratio - 1.0).abs() < 0.1,
                    "final energy must sit on the floor ({backend:?}): {row:?}"
                );
            }
            assert_eq!(figures.len(), 1);
        }
    }
}
