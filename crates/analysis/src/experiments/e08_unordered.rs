//! E8 — the unordered-setting composition: correctness and overhead.
//!
//! Paper anchor: §4 ("Unordered setting"), claiming `O(k⁴)` states via an
//! ordering layer plus re-initialization. This experiment checks that the
//! reconstruction converges to the right winner (with opaque, arbitrary
//! color identifiers), verifies bra-ket conservation at the end, and
//! measures the overhead factor over vanilla Circles, plus the state-count
//! comparison `k³` vs `O(k⁴)`.

use circles_core::{CirclesProtocol, Color};
use pp_extensions::unordered::UnorderedCircles;
use pp_protocol::{EnumerableProtocol, Population, UniformPairScheduler};

use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{run_trial, Backend};
use crate::workloads::{margin_workload, shuffled, true_winner};

/// Parameters for E8.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population sizes.
    pub ns: Vec<usize>,
    /// Color counts.
    pub ks: Vec<u16>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Which engine executes the unordered-protocol runs (the vanilla
    /// overhead baseline always runs indexed, keeping the denominator
    /// comparable across sweeps).
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ns: vec![16, 64, 128],
            ks: vec![2, 3, 4, 6],
            seeds: 24,
            max_steps: 1_000_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Count,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            ns: vec![10],
            ks: vec![2, 3],
            seeds: 3,
            max_steps: 100_000_000,
            threads: 2,
            backend: Backend::Count,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

struct UnorderedRun {
    steps_to_silence: u64,
    correct: bool,
    conserved: bool,
}

/// Maps ordinal colors to "opaque" scattered identifiers, so the unordered
/// protocol cannot accidentally benefit from dense numbering.
fn opaquify(inputs: &[Color]) -> Vec<Color> {
    inputs
        .iter()
        .map(|c| Color(c.0.wrapping_mul(257).wrapping_add(13)))
        .collect()
}

fn one_run(n: usize, k: u16, seed: u64, max_steps: u64, backend: Backend) -> UnorderedRun {
    let protocol = UnorderedCircles::new(k);
    let base = shuffled(margin_workload(n, k, (n / 8).max(1)), seed);
    let expected_plain = true_winner(&base, k);
    let inputs = opaquify(&base);
    let expected = opaquify(&[expected_plain])[0];
    let outcome = backend
        .run_to_silence(&protocol, &inputs, seed, max_steps)
        .expect("unordered run failed");
    let population = Population::from_states(outcome.config.to_state_vec());
    let winner = UnorderedCircles::consensus_winner(&population);
    UnorderedRun {
        steps_to_silence: outcome.report.steps_to_silence,
        correct: outcome.stabilized && winner == Some(expected),
        conserved: UnorderedCircles::conservation_holds(&population, k),
    }
}

fn vanilla_mean(n: usize, k: u16, seeds: &[u64], threads: usize, max_steps: u64) -> f64 {
    let inputs = margin_workload(n, k, (n / 8).max(1));
    let protocol = CirclesProtocol::new(k).expect("k >= 1");
    let expected = true_winner(&inputs, k);
    let results = run_seeded(seeds, threads, |seed| {
        let shuffled_inputs = shuffled(inputs.clone(), seed);
        run_trial(
            &protocol,
            &shuffled_inputs,
            UniformPairScheduler::new(),
            seed,
            expected,
            max_steps,
        )
        .expect("vanilla trial")
    });
    let times: Vec<f64> = results.iter().map(|r| r.steps_to_silence as f64).collect();
    Summary::from_samples(&times).mean
}

/// Runs E8 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        &format!(
            "E8 — unordered-setting Circles: correctness and overhead ({} backend)",
            params.backend.name()
        ),
        &[
            "k",
            "n",
            "states k³ (ordered)",
            "states O(k⁴) (unordered)",
            "silence mean (unordered)",
            "overhead vs vanilla",
            "correct rate",
            "conservation at end",
        ],
    );
    let seeds = seed_range(params.seeds);
    for &k in &params.ks {
        for &n in &params.ns {
            let runs = run_seeded(&seeds, params.threads, |seed| {
                one_run(n, k, seed, params.max_steps, params.backend)
            });
            let times: Vec<f64> = runs.iter().map(|r| r.steps_to_silence as f64).collect();
            let summary = Summary::from_samples(&times);
            let vanilla = vanilla_mean(n, k, &seeds, params.threads, params.max_steps);
            let correct = runs.iter().filter(|r| r.correct).count();
            let conserved = runs.iter().filter(|r| r.conserved).count();
            let ordered_states = CirclesProtocol::new(k).expect("k").state_complexity();
            let unordered_states = UnorderedCircles::new(k).state_complexity();
            table.push_row(vec![
                k.to_string(),
                n.to_string(),
                ordered_states.to_string(),
                unordered_states.to_string(),
                fmt_f64(summary.mean),
                format!("{:.2}x", summary.mean / vanilla.max(1.0)),
                format!("{:.2}", correct as f64 / runs.len() as f64),
                format!("{}/{}", conserved, runs.len()),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unordered_composition_is_correct_at_small_scale_on_both_backends() {
        for backend in Backend::ALL {
            let table = run(&Params::quick().with_backend(backend));
            for row in table.rows() {
                assert_eq!(
                    row[6],
                    "1.00",
                    "unordered circles failed on {}: {row:?}",
                    backend.name()
                );
            }
        }
    }

    #[test]
    fn state_counts_match_theory() {
        let table = run(&Params::quick());
        for row in table.rows() {
            let k: usize = row[0].parse().unwrap();
            assert_eq!(row[2], (k * k * k).to_string());
            assert_eq!(row[3], (4 * k * k * k * k + k * k).to_string());
        }
    }
}
