//! E17 — the output-propagation tail against its exact epidemic model.
//!
//! Paper anchor: Theorem 3.7's endgame — "the agent(s) with bra-ket ⟨μ|μ⟩
//! will transmit their output color to the rest of the population". That
//! tail has an exact structure the proof does not need but we can verify:
//! rule 2 copies outputs *from self-loop agents only*, so post-stabilization
//! the transmitters are precisely the `⟨μ|μ⟩` agents, whose number equals
//! the winner's margin (one per singleton greedy set), and conversion is
//! non-transitive — a *source-only* epidemic. Its expected duration is
//! `n(n−1)·H_u / (2s)` for `s` sources and `u` unconverted agents
//! ([`expected_source_epidemic_interactions`]). This experiment instruments
//! real runs (last ket exchange, unconverted count at that instant) and
//! compares the measured tail with the per-run closed form; the ratio
//! should hover around 1.
//!
//! [`expected_source_epidemic_interactions`]: crate::epidemic::expected_source_epidemic_interactions

use circles_core::{CirclesProtocol, Color};
use pp_protocol::{Population, Simulation, UniformPairScheduler};

use crate::epidemic::expected_source_epidemic_interactions;
use crate::plot::LinePlot;
use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::workloads::{margin_workload, shuffled, true_winner};

/// Parameters for E17.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of colors.
    pub k: u16,
    /// Population sizes to sweep.
    pub ns: Vec<usize>,
    /// Winner margin in agents — this is also the number of `⟨μ|μ⟩`
    /// sources in the tail, so it is held *absolute* (a margin that grows
    /// with `n` floods the population with sources and the tail vanishes
    /// before the last exchange).
    pub margin: usize,
    /// Seeds per population size.
    pub seeds: u64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 3,
            ns: vec![64, 128, 256, 512],
            margin: 2,
            seeds: 32,
            max_steps: 400_000_000,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            k: 2,
            ns: vec![24, 48],
            margin: 2,
            seeds: 8,
            max_steps: 20_000_000,
            threads: 2,
        }
    }
}

/// One instrumented run's tail measurements.
#[derive(Debug, Clone, Copy)]
struct TailSample {
    /// Steps from the last ket exchange to everlasting output consensus.
    measured_tail: f64,
    /// `n(n−1)·H_u / (2s)` with the run's own `u` and `s`.
    predicted_tail: f64,
    /// Unconverted agents at stabilization.
    unconverted: f64,
    /// `⟨μ|μ⟩` sources in the terminal configuration.
    sources: f64,
}

/// Runs E17 and returns the table plus the tail-scaling figure.
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let mut table = Table::new(
        "E17 — output-propagation tail vs the source-epidemic closed form",
        &[
            "n",
            "seeds",
            "tail steps (measured)",
            "tail steps (predicted)",
            "ratio",
            "unconverted u mean",
            "sources s",
        ],
    );
    let mut measured_points = Vec::new();
    let mut predicted_points = Vec::new();
    for &n in &params.ns {
        let inputs = margin_workload(n, params.k, params.margin);
        let protocol = CirclesProtocol::new(params.k).expect("k >= 1");
        let samples = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
            let placed = shuffled(inputs.clone(), seed);
            instrumented_run(&protocol, &placed, seed, params.max_steps)
        });
        let measured = Summary::from_samples(
            &samples
                .iter()
                .map(|s| s.measured_tail)
                .collect::<Vec<f64>>(),
        );
        let predicted = Summary::from_samples(
            &samples
                .iter()
                .map(|s| s.predicted_tail)
                .collect::<Vec<f64>>(),
        );
        let unconverted =
            Summary::from_samples(&samples.iter().map(|s| s.unconverted).collect::<Vec<f64>>());
        let sources =
            Summary::from_samples(&samples.iter().map(|s| s.sources).collect::<Vec<f64>>());
        measured_points.push((inputs.len() as f64, measured.mean));
        predicted_points.push((inputs.len() as f64, predicted.mean));
        let ratio_cell = if predicted.mean > 0.0 {
            fmt_f64(measured.mean / predicted.mean)
        } else {
            "-".to_string() // tail already converted at stabilization
        };
        table.push_row(vec![
            inputs.len().to_string(),
            params.seeds.to_string(),
            fmt_f64(measured.mean),
            fmt_f64(predicted.mean),
            ratio_cell,
            fmt_f64(unconverted.mean),
            fmt_f64(sources.mean),
        ]);
    }
    let figure = LinePlot::new("E17: propagation tail, measured vs closed form")
        .axis_labels("n", "tail interactions")
        .log_x()
        .log_y()
        .with_series("measured", measured_points)
        .with_series("n(n-1)·H_u/(2s)", predicted_points);
    (table, vec![("e17_propagation".to_string(), figure)])
}

/// Instrumented Circles run: detects the last ket exchange and the
/// conversion state at that instant, then measures the tail to consensus.
fn instrumented_run(
    protocol: &CirclesProtocol,
    inputs: &[Color],
    seed: u64,
    max_steps: u64,
) -> TailSample {
    let k = protocol.k();
    let winner = true_winner(inputs, k);
    let population = Population::from_inputs(protocol, inputs);
    let n = population.len() as u64;
    let mut sim = Simulation::new(protocol, population, UniformPairScheduler::new(), seed);

    let mut outputting_winner = inputs.iter().filter(|&&c| c == winner).count() as u64;
    let mut last_exchange_step = 0u64;
    let mut unconverted_at_exchange = n - outputting_winner;
    let report = sim
        .run_until_silent_observed(max_steps, n.max(16), |step| {
            for (before, after) in [
                (&step.before.0, &step.after.0),
                (&step.before.1, &step.after.1),
            ] {
                match (before.out == winner, after.out == winner) {
                    (false, true) => outputting_winner += 1,
                    (true, false) => outputting_winner -= 1,
                    _ => {}
                }
            }
            let exchanged = step.before.0.braket != step.after.0.braket
                || step.before.1.braket != step.after.1.braket;
            if exchanged {
                last_exchange_step = step.step;
                unconverted_at_exchange = n - outputting_winner;
            }
        })
        .expect("Circles always silences under uniform scheduling within budget");

    // Sources: ⟨μ|μ⟩ multiplicity in the terminal configuration (equals the
    // margin by Lemmas 3.2 + 3.6).
    let sources = sim
        .population()
        .iter()
        .filter(|s| s.braket.is_self_loop() && s.braket.bra == winner)
        .count() as u64;
    let measured_tail = report.steps_to_consensus.saturating_sub(last_exchange_step) as f64;
    let predicted_tail =
        expected_source_epidemic_interactions(n, sources.max(1), unconverted_at_exchange);
    TailSample {
        measured_tail,
        predicted_tail,
        unconverted: unconverted_at_exchange as f64,
        sources: sources as f64,
    }
}

/// Runs E17 and returns the table.
pub fn run(params: &Params) -> Table {
    run_with_figures(params).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_tail_tracks_the_closed_form() {
        let (table, figures) = run_with_figures(&Params::quick());
        for row in table.rows() {
            if row[4] == "-" {
                continue; // degenerate: tail already converted
            }
            let ratio: f64 = row[4].parse().unwrap();
            assert!(
                (0.4..2.5).contains(&ratio),
                "tail ratio {ratio} far from 1: {row:?}"
            );
        }
        assert_eq!(figures.len(), 1);
    }

    #[test]
    fn sources_equal_the_margin() {
        let p = Params::quick();
        let (table, _) = run_with_figures(&p);
        for row in table.rows() {
            let sources: f64 = row[6].parse().unwrap();
            assert!(
                (sources - p.margin as f64).abs() <= 1.0,
                "terminal ⟨μ|μ⟩ count {sources} differs from margin {}: {row:?}",
                p.margin
            );
        }
    }
}
