//! E12 — exact expected convergence times vs simulation estimates.
//!
//! For instances small enough to enumerate, the uniform-random execution is
//! an absorbing Markov chain over anonymous configurations whose expected
//! hitting time of the silent set is *exactly* solvable. This experiment
//! computes that exact value and compares it with the empirical mean from
//! both simulation engines — a quantitative, end-to-end validation of the
//! entire measurement pipeline (engines, silence detection, statistics):
//! the sampled means must land within their 95% confidence intervals of the
//! exact value.

use circles_core::{CirclesProtocol, Color};
use pp_mc::{ExploreLimits, UniformChain};
use pp_protocol::{CountConfig, Protocol};

use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{run_count_trial, run_trial};
use crate::workloads::true_winner;
use pp_protocol::UniformPairScheduler;

/// Parameters for E12.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instances as (count profile, k).
    pub instances: Vec<(Vec<usize>, u16)>,
    /// Seeds per engine per instance.
    pub seeds: u64,
    /// Exploration limits for the exact chain.
    pub limits: ExploreLimits,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            instances: vec![
                (vec![2, 1], 2),
                (vec![3, 2], 2),
                (vec![5, 3], 2),
                (vec![2, 1, 1], 3),
                (vec![3, 2, 1], 3),
                (vec![3, 2, 2], 3),
                (vec![3, 2, 1, 1], 4),
            ],
            seeds: 4000,
            limits: ExploreLimits::default(),
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            instances: vec![(vec![2, 1], 2), (vec![2, 1, 1], 3)],
            seeds: 600,
            limits: ExploreLimits::default(),
            threads: 2,
        }
    }
}

fn inputs_of(profile: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in profile.iter().enumerate() {
        inputs.extend(std::iter::repeat_n(Color(color as u16), count));
    }
    inputs
}

/// Runs E12 and returns the table.
///
/// # Panics
///
/// Panics when an instance's exact expectation does not exist (it always
/// does for Circles) or an engine's sampled mean falls outside five standard
/// errors of the exact value — that would indicate an engine bug, and the
/// harness must not report numbers from a broken engine.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E12 — exact expected interactions to silence vs engine estimates",
        &[
            "profile",
            "k",
            "chain configs",
            "exact E[steps]",
            "indexed mean ± ci95",
            "counting mean ± ci95",
            "indexed z",
            "counting z",
        ],
    );
    for (profile, k) in &params.instances {
        let inputs = inputs_of(profile);
        let protocol = CirclesProtocol::new(*k).expect("k >= 1");
        let expected_winner = true_winner(&inputs, *k);
        let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let chain = UniformChain::build(&protocol, &initial, params.limits).expect("chain build");
        let exact = chain
            .expected_steps_to_silence(1e-12, 100_000)
            .expect("finite expectation for circles");

        let indexed: Vec<f64> = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
            run_trial(
                &protocol,
                &inputs,
                UniformPairScheduler::new(),
                seed,
                expected_winner,
                100_000_000,
            )
            .expect("trial")
            .steps_to_silence as f64
        });
        let counting: Vec<f64> = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
            run_count_trial(&protocol, &inputs, seed, expected_winner, 100_000_000)
                .expect("trial")
                .steps_to_silence as f64
        });
        let si = Summary::from_samples(&indexed);
        let sc = Summary::from_samples(&counting);
        let z = |s: &Summary| (s.mean - exact) / (s.std / (s.count as f64).sqrt()).max(1e-12);
        let zi = z(&si);
        let zc = z(&sc);
        assert!(
            zi.abs() < 5.0 && zc.abs() < 5.0,
            "engine mean deviates from exact value: profile {profile:?}, z = {zi:.2}/{zc:.2}"
        );
        table.push_row(vec![
            format!("{profile:?}"),
            k.to_string(),
            chain.len().to_string(),
            format!("{exact:.4}"),
            format!("{} ± {}", fmt_f64(si.mean), fmt_f64(si.ci95())),
            format!("{} ± {}", fmt_f64(sc.mean), fmt_f64(sc.ci95())),
            format!("{zi:.2}"),
            format!("{zc:.2}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_match_exact_values() {
        // The assertions inside run() are the test: z-scores within 5 SE.
        let table = run(&Params::quick());
        assert_eq!(table.len(), Params::quick().instances.len());
    }
}
