//! E12 — exact expected convergence times vs simulation estimates.
//!
//! For instances small enough to enumerate, the uniform-random execution is
//! an absorbing Markov chain over anonymous configurations whose expected
//! hitting time of the silent set is *exactly* solvable. This experiment
//! computes that exact value and compares it with the empirical mean from
//! both simulation engines — a quantitative, end-to-end validation of the
//! entire measurement pipeline (engines, silence detection, statistics):
//! the sampled means must land within their 95% confidence intervals of the
//! exact value.

use circles_core::{CirclesProtocol, Color};
use pp_mc::{ExploreLimits, UniformChain};
use pp_protocol::{CountConfig, Protocol};

use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialRunner};
use crate::workloads::true_winner;

/// Parameters for E12.
#[derive(Debug, Clone)]
pub struct Params {
    /// Instances as (count profile, k).
    pub instances: Vec<(Vec<usize>, u16)>,
    /// Seeds per engine per instance.
    pub seeds: u64,
    /// Exploration limits for the exact chain.
    pub limits: ExploreLimits,
    /// Worker threads.
    pub threads: usize,
    /// Engines validated against the exact expectation — both by default;
    /// restrict to one to check a single backend against ground truth.
    pub backends: Vec<Backend>,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            instances: vec![
                (vec![2, 1], 2),
                (vec![3, 2], 2),
                (vec![5, 3], 2),
                (vec![2, 1, 1], 3),
                (vec![3, 2, 1], 3),
                (vec![3, 2, 2], 3),
                (vec![3, 2, 1, 1], 4),
            ],
            seeds: 4000,
            limits: ExploreLimits::default(),
            threads: crate::runner::default_threads(),
            backends: Backend::ALL.to_vec(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            instances: vec![(vec![2, 1], 2), (vec![2, 1, 1], 3)],
            seeds: 600,
            limits: ExploreLimits::default(),
            threads: 2,
            backends: Backend::ALL.to_vec(),
        }
    }
}

fn inputs_of(profile: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in profile.iter().enumerate() {
        inputs.extend(std::iter::repeat_n(Color(color as u16), count));
    }
    inputs
}

/// Runs E12 and returns the table.
///
/// # Panics
///
/// Panics when an instance's exact expectation does not exist (it always
/// does for Circles) or an engine's sampled mean falls outside five standard
/// errors of the exact value — that would indicate an engine bug, and the
/// harness must not report numbers from a broken engine.
pub fn run(params: &Params) -> Table {
    let mut headers: Vec<String> = ["profile", "k", "chain configs", "exact E[steps]"]
        .iter()
        .map(|h| (*h).to_string())
        .collect();
    for backend in &params.backends {
        headers.push(format!("{} mean ± ci95", backend.name()));
    }
    for backend in &params.backends {
        headers.push(format!("{} z", backend.name()));
    }
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = Table::new(
        "E12 — exact expected interactions to silence vs engine estimates",
        &header_refs,
    );
    for (profile, k) in &params.instances {
        let inputs = inputs_of(profile);
        let protocol = CirclesProtocol::new(*k).expect("k >= 1");
        let expected_winner = true_winner(&inputs, *k);
        let initial: CountConfig<_> = inputs.iter().map(|c| protocol.input(c)).collect();
        let chain = UniformChain::build(&protocol, &initial, params.limits).expect("chain build");
        let exact = chain
            .expected_steps_to_silence(1e-12, 100_000)
            .expect("finite expectation for circles");

        let z_of = |s: &Summary| (s.mean - exact) / (s.std / (s.count as f64).sqrt()).max(1e-12);
        let mut means = Vec::new();
        let mut zs = Vec::new();
        for &backend in &params.backends {
            let runner = TrialRunner::new(backend)
                .threads(params.threads)
                .max_steps(100_000_000)
                .seeds(params.seeds);
            let samples: Vec<f64> = runner
                .run(&protocol, &inputs, expected_winner)
                .iter()
                .map(|r| r.steps_to_silence as f64)
                .collect();
            let summary = Summary::from_samples(&samples);
            let z = z_of(&summary);
            assert!(
                z.abs() < 5.0,
                "{} engine mean deviates from exact value: profile {profile:?}, z = {z:.2}",
                backend.name()
            );
            means.push(format!(
                "{} ± {}",
                fmt_f64(summary.mean),
                fmt_f64(summary.ci95())
            ));
            zs.push(format!("{z:.2}"));
        }
        let mut row = vec![
            format!("{profile:?}"),
            k.to_string(),
            chain.len().to_string(),
            format!("{exact:.4}"),
        ];
        row.extend(means);
        row.extend(zs);
        table.push_row(row);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_match_exact_values() {
        // The assertions inside run() are the test: z-scores within 5 SE.
        let table = run(&Params::quick());
        assert_eq!(table.len(), Params::quick().instances.len());
    }
}
