//! E1 — state complexity: Circles' `k³` against the `Ω(k²)` lower bound,
//! the prior `O(k⁷)` upper bound, and the baselines' state counts; plus the
//! number of states a real execution actually visits.
//!
//! Paper anchor: the Contribution paragraph of §1 ("state complexity of
//! `k³`, … improves upon the best known upper bound of `O(k⁷)` … narrows
//! the gap with the best known lower bound of `Ω(k²)`").

use std::collections::HashSet;

use circles_core::{CirclesProtocol, Color};
use pp_baselines::{CancellationPlurality, FourStateMajority, UndecidedDynamics};
use pp_protocol::{EnumerableProtocol, Population, Simulation, UniformPairScheduler};

use crate::plot::LinePlot;
use crate::table::Table;
use crate::workloads::{margin_workload, shuffled};

/// Parameters for E1.
#[derive(Debug, Clone)]
pub struct Params {
    /// Color counts to sweep.
    pub ks: Vec<u16>,
    /// Population size for the visited-state measurement.
    pub n: usize,
    /// Seed for the visited-state run.
    pub seed: u64,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            ks: vec![2, 3, 4, 6, 8, 12, 16, 24, 32],
            n: 256,
            seed: 7,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            ks: vec![2, 3, 4],
            n: 32,
            seed: 7,
        }
    }
}

/// Runs E1 and returns the table plus the state-count figure (log-log: the
/// `k²`/`k³`/`k⁷` curves and the states actually visited).
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let table = run(params);
    let series = |col: usize| -> Vec<(f64, f64)> {
        table
            .rows()
            .iter()
            .map(|row| (row[0].parse().unwrap(), row[col].parse::<f64>().unwrap()))
            .collect()
    };
    let figure = LinePlot::new("E1: state complexity vs k")
        .axis_labels("k", "states per agent")
        .log_x()
        .log_y()
        .with_series("lower bound k²", series(1))
        .with_series("circles k³", series(2))
        .with_series("prior bound k⁷", series(3))
        .with_series("visited in one run", series(4));
    (table, vec![("e01_states".to_string(), figure)])
}

/// Runs E1 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E1 — state complexity: k³ vs bounds and baselines",
        &[
            "k",
            "lower bound k²",
            "circles k³",
            "prior bound k⁷",
            "circles states visited (n=given)",
            "4-state (k=2 only)",
            "USD 2k",
            "cancellation 2k",
        ],
    );
    for &k in &params.ks {
        let protocol = CirclesProtocol::new(k).expect("k >= 1");
        let declared = protocol.state_complexity();
        assert_eq!(declared, usize::from(k).pow(3), "state space must be k³");
        let visited = visited_states(&protocol, params.n, params.seed);
        let four_state = if k == 2 {
            FourStateMajority::new().state_complexity().to_string()
        } else {
            "-".to_string()
        };
        table.push_row(vec![
            k.to_string(),
            usize::from(k).pow(2).to_string(),
            declared.to_string(),
            format!("{:.2e}", (f64::from(k)).powi(7)),
            visited.to_string(),
            four_state,
            UndecidedDynamics::new(k).state_complexity().to_string(),
            CancellationPlurality::new(k).state_complexity().to_string(),
        ]);
    }
    table
}

/// Counts distinct states observed over one uniform-random run to silence.
fn visited_states(protocol: &CirclesProtocol, n: usize, seed: u64) -> usize {
    let k = protocol.k();
    let margin = (n / 16).max(1);
    let inputs: Vec<Color> = shuffled(margin_workload(n, k, margin), seed);
    let population = Population::from_inputs(protocol, &inputs);
    let mut seen: HashSet<circles_core::CirclesState> = population.iter().cloned().collect();
    let mut sim = Simulation::new(protocol, population, UniformPairScheduler::new(), seed);
    let budget = (n as u64) * (n as u64) * 64;
    let _ = sim.run_until_silent_observed(budget, n as u64, |report| {
        seen.insert(report.after.0);
        seen.insert(report.after.1);
    });
    seen.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_has_row_per_k() {
        let params = Params::quick();
        let table = run(&params);
        assert_eq!(table.len(), params.ks.len());
    }

    #[test]
    fn visited_never_exceeds_declared() {
        let params = Params::quick();
        let table = run(&params);
        for row in table.rows() {
            let declared: usize = row[2].parse().unwrap();
            let visited: usize = row[4].parse().unwrap();
            assert!(
                visited <= declared,
                "visited {visited} > declared {declared}"
            );
        }
    }

    #[test]
    fn four_state_column_only_for_binary() {
        let table = run(&Params::quick());
        assert_eq!(table.rows()[0][5], "4"); // k = 2
        assert_eq!(table.rows()[1][5], "-"); // k = 3
    }

    #[test]
    fn figure_plots_all_four_curves() {
        let (_, figures) = run_with_figures(&Params::quick());
        assert_eq!(figures.len(), 1);
        let svg = figures[0].1.to_svg();
        for label in ["k²", "k³", "k⁷", "visited"] {
            assert!(svg.contains(label), "missing series {label}");
        }
    }
}
