//! E16 — the binary-majority protocol landscape: states vs accuracy vs
//! speed.
//!
//! Paper anchor: §1 motivates Circles by state complexity (`k³` against the
//! `Ω(k²)` lower bound for *always-correct* plurality). At `k = 2` the
//! landscape is classical and sharp: the 3-state approximate-majority
//! protocol sits **below** the always-correct bound and pays for it with
//! real errors at small margins; the 4-state exact automaton and Circles
//! (`2³ = 8` states) are always correct at every margin; undecided-state
//! dynamics and pairwise cancellation fill in the middle. This experiment
//! sweeps the winner's margin at fixed `n` and reports accuracy and
//! convergence speed for all five — the trade-off the paper's contribution
//! lives on.

use circles_core::{CirclesProtocol, Color};
use pp_baselines::{
    ApproximateMajority, CancellationPlurality, FourStateMajority, UndecidedDynamics,
};
use pp_protocol::{EnumerableProtocol, Protocol};

use crate::plot::LinePlot;
use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::{Backend, TrialResult};
use crate::workloads::{margin_workload, true_winner};

/// Parameters for E16.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size.
    pub n: usize,
    /// Winner margins (in agents) to sweep.
    pub margins: Vec<usize>,
    /// Seeds per (protocol, margin) cell.
    pub seeds: u64,
    /// Interaction budget per run.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Simulation engine running every contender's trials.
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 256,
            margins: vec![1, 2, 4, 8, 16, 32, 64],
            seeds: 64,
            max_steps: 200_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Count,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 64,
            margins: vec![2, 16],
            seeds: 12,
            max_steps: 20_000_000,
            threads: 2,
            backend: Backend::Count,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

/// A boxed trial closure: `(inputs, seed, expected, max_steps) → result`.
type TrialFn = Box<dyn Fn(&[Color], u64, Color, u64) -> TrialResult + Sync>;

/// One protocol entry of the landscape.
struct Contender {
    name: &'static str,
    states: usize,
    run: TrialFn,
}

fn contenders(backend: Backend) -> Vec<Contender> {
    fn runner<P>(protocol: P, backend: Backend) -> TrialFn
    where
        P: Protocol<Input = Color, Output = Color> + Sync + 'static,
        P::State: Send + Sync,
    {
        Box::new(move |inputs, seed, expected, max_steps| {
            backend
                .trial(&protocol, inputs, seed, expected, max_steps)
                .expect("trial failed")
        })
    }
    let circles = CirclesProtocol::new(2).expect("k = 2");
    let usd = UndecidedDynamics::new(2);
    let cancel = CancellationPlurality::new(2);
    vec![
        Contender {
            name: "circles (k=2)",
            states: circles.state_complexity(),
            run: runner(circles, backend),
        },
        Contender {
            name: "four-state exact",
            states: FourStateMajority::new().state_complexity(),
            run: runner(FourStateMajority::new(), backend),
        },
        Contender {
            name: "approximate (3-state)",
            states: ApproximateMajority::new().state_complexity(),
            run: runner(ApproximateMajority::new(), backend),
        },
        Contender {
            name: "undecided-state",
            states: usd.state_complexity(),
            run: runner(usd, backend),
        },
        Contender {
            name: "cancellation",
            states: cancel.state_complexity(),
            run: runner(cancel, backend),
        },
    ]
}

/// Runs E16 and returns the table plus the accuracy-vs-margin figure.
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let mut table = Table::new(
        "E16 — binary majority landscape (accuracy and speed vs margin)",
        &[
            "protocol",
            "states",
            "margin",
            "seeds",
            "correct",
            "silence steps mean",
            "parallel time",
        ],
    );
    let mut figure = LinePlot::new("E16: accuracy vs winner margin (k=2)")
        .axis_labels("margin (agents)", "fraction of correct runs")
        .log_x();

    for contender in contenders(params.backend) {
        let mut accuracy_points = Vec::new();
        for &margin in &params.margins {
            let inputs = margin_workload(params.n, 2, margin);
            let n = inputs.len();
            let expected = true_winner(&inputs, 2);
            let results = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
                (contender.run)(&inputs, seed, expected, params.max_steps)
            });
            let correct =
                results.iter().filter(|r| r.correct).count() as f64 / results.len() as f64;
            let silences: Vec<f64> = results.iter().map(|r| r.steps_to_silence as f64).collect();
            let silence = Summary::from_samples(&silences);
            accuracy_points.push((margin as f64, correct));
            table.push_row(vec![
                contender.name.to_string(),
                contender.states.to_string(),
                margin.to_string(),
                params.seeds.to_string(),
                format!("{correct:.3}"),
                fmt_f64(silence.mean),
                fmt_f64(silence.mean / n as f64),
            ]);
        }
        figure = figure.with_series(contender.name, accuracy_points);
    }
    (table, vec![("e16_accuracy".to_string(), figure)])
}

/// Runs E16 and returns the table.
pub fn run(params: &Params) -> Table {
    run_with_figures(params).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn always_correct_protocols_never_err() {
        let (table, figures) = run_with_figures(&Params::quick());
        for row in table.rows() {
            let name = row[0].as_str();
            if name.starts_with("circles")
                || name.starts_with("four-state")
                || name.starts_with("cancellation")
            {
                assert_eq!(row[4], "1.000", "always-correct protocol erred: {row:?}");
            }
        }
        assert_eq!(figures.len(), 1);
    }

    #[test]
    fn approximate_majority_uses_fewest_states() {
        let table = run(&Params::quick());
        let states: Vec<usize> = table.rows().iter().map(|r| r[1].parse().unwrap()).collect();
        let min = *states.iter().min().unwrap();
        assert_eq!(min, 3);
        // Circles pays 8 = 2³ states at k = 2.
        assert!(states.contains(&8));
    }

    #[test]
    fn covers_all_protocol_margin_cells() {
        let p = Params::quick();
        let table = run(&p);
        assert_eq!(table.len(), 5 * p.margins.len());
    }

    #[test]
    fn indexed_backend_agrees_on_always_correct_contenders() {
        let mut p = Params::quick().with_backend(Backend::Indexed);
        // A single margin keeps the indexed sweep CI-cheap.
        p.margins = vec![16];
        p.seeds = 6;
        let table = run(&p);
        for row in table.rows() {
            let name = row[0].as_str();
            if name.starts_with("circles") || name.starts_with("four-state") {
                assert_eq!(row[4], "1.000", "always-correct contender erred: {row:?}");
            }
        }
    }
}
