//! E13 — the chemical reading: stochastic Circles converges to its
//! mean-field ODE as `n` grows (Kurtz's theorem).
//!
//! Paper anchor: the title and §1 credit the design to "energy minimization
//! in chemical settings". The chemical object behind that phrase is the
//! reaction network whose species are Circles states; this experiment
//! simulates it exactly (Gillespie SSA, `pp-crn`) against its
//! law-of-mass-action fluid limit and measures the sup-norm density gap on
//! a fixed time grid. The gap must shrink like `n^{-1/2}` — the fingerprint
//! that the simulator and the ODE implement the *same* dynamics.

use circles_core::{CirclesProtocol, CirclesState, Color};
use pp_crn::{ode_density_trajectory, ssa_density_trajectory, DensityTrajectory, ReactionNetwork};
use pp_protocol::{CountConfig, CountEngine, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::plot::LinePlot;
use crate::runner::{run_seeded, seed_range};
use crate::stats::{log_log_slope, Summary};
use crate::table::{fmt_f64, Table};

/// Which stochastic sampler produces the empirical density trajectories.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectorySampler {
    /// Exact Gillespie SSA over the reaction network (`pp-crn`) — one event
    /// loop iteration per *productive reaction*, with continuous holding
    /// times. The reference sampler, practical to `n ≈ 10^5`.
    Ssa,
    /// The batched count engine, grid-sampled via
    /// [`CountEngine::advance_to`] at `t · n` interactions (one parallel
    /// time unit = `n` interactions, the convention of `pp_crn`). Change
    /// points cost `O(deg + log slots)`, which is what makes empirical
    /// densities at `n = 10^8` comparable against the ODE limit.
    Count,
}

impl TrajectorySampler {
    /// Stable name used in table titles.
    pub fn name(self) -> &'static str {
        match self {
            TrajectorySampler::Ssa => "ssa",
            TrajectorySampler::Count => "count",
        }
    }
}

/// Parameters for E13.
#[derive(Debug, Clone)]
pub struct Params {
    /// Number of colors.
    pub k: u16,
    /// Initial density profile (one weight per color; normalized
    /// internally).
    pub profile: Vec<f64>,
    /// Population sizes to sweep.
    pub ns: Vec<usize>,
    /// Stochastic runs per population size.
    pub seeds: u64,
    /// Sampling horizon in parallel-time units.
    pub t_end: f64,
    /// Grid spacing.
    pub dt_grid: f64,
    /// ODE integration step.
    pub dt_ode: f64,
    /// Worker threads.
    pub threads: usize,
    /// Stochastic sampler for the empirical trajectories.
    pub sampler: TrajectorySampler,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            k: 3,
            profile: vec![0.5, 0.3, 0.2],
            ns: vec![64, 256, 1024, 4096],
            seeds: 8,
            t_end: 8.0,
            dt_grid: 0.5,
            dt_ode: 0.01,
            threads: crate::runner::default_threads(),
            sampler: TrajectorySampler::Ssa,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            k: 2,
            profile: vec![0.65, 0.35],
            ns: vec![32, 256],
            seeds: 3,
            t_end: 4.0,
            dt_grid: 1.0,
            dt_ode: 0.02,
            threads: 2,
            sampler: TrajectorySampler::Ssa,
        }
    }

    /// The Kurtz sweep at populations only the count engine reaches
    /// (`n` up to `10^8`): grid-sampled `advance_to` trajectories against
    /// the same ODE limit.
    pub fn count_large() -> Self {
        Params {
            k: 3,
            profile: vec![0.5, 0.3, 0.2],
            ns: vec![1_000_000, 10_000_000, 100_000_000],
            seeds: 4,
            t_end: 8.0,
            dt_grid: 0.5,
            dt_ode: 0.01,
            threads: crate::runner::default_threads(),
            sampler: TrajectorySampler::Count,
        }
    }

    /// The same preset with a different sampler.
    pub fn with_sampler(mut self, sampler: TrajectorySampler) -> Self {
        self.sampler = sampler;
        self
    }
}

/// Samples one count-engine run of `protocol` from `initial` on the
/// parallel-time grid: at grid time `t` the engine is advanced to exactly
/// `round(t · n)` interactions and the configuration densities are read off
/// through the network's species map. The count-level analogue of
/// `ssa_density_trajectory`, exact in the same sense (silence is absorbing
/// and detected exactly) and usable at `n = 10^8`.
pub fn count_density_trajectory(
    network: &ReactionNetwork<CirclesState>,
    protocol: &CirclesProtocol,
    initial: &CountConfig<CirclesState>,
    seed: u64,
    times: &[f64],
) -> DensityTrajectory {
    let n = initial.n() as f64;
    let mut engine = CountEngine::from_config(protocol, initial.clone(), seed);
    let mut rows = Vec::with_capacity(times.len());
    for &t in times {
        engine
            .advance_to((t * n).round() as u64)
            .expect("population has at least two agents");
        let counts = network
            .counts_from_config(&engine.config())
            .expect("network closure covers every reachable state");
        rows.push(network.densities(&counts));
    }
    DensityTrajectory {
        times: times.to_vec(),
        rows,
    }
}

/// The grid `0, dt, 2·dt, …, t_end`.
fn grid(t_end: f64, dt: f64) -> Vec<f64> {
    let steps = (t_end / dt).round() as usize;
    (0..=steps).map(|i| i as f64 * dt).collect()
}

/// Integer counts for `n` agents matching `profile` (largest-remainder
/// rounding; exact sum). Shared with E14.
pub(crate) fn profile_counts(n: usize, profile: &[f64]) -> Vec<usize> {
    let total: f64 = profile.iter().sum();
    let mut counts: Vec<usize> = profile
        .iter()
        .map(|p| (p / total * n as f64).floor() as usize)
        .collect();
    let mut remainders: Vec<(usize, f64)> = profile
        .iter()
        .enumerate()
        .map(|(i, p)| (i, p / total * n as f64 - counts[i] as f64))
        .collect();
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders"));
    let mut missing = n - counts.iter().sum::<usize>();
    for (i, _) in remainders {
        if missing == 0 {
            break;
        }
        counts[i] += 1;
        missing -= 1;
    }
    counts
}

/// Runs E13 and returns the table plus figures.
pub fn run_with_figures(params: &Params) -> (Table, Vec<(String, LinePlot)>) {
    let protocol = CirclesProtocol::new(params.k).expect("k >= 1");
    let support: Vec<CirclesState> = (0..params.k).map(|i| protocol.input(&Color(i))).collect();
    let network =
        ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).expect("closure fits");
    let times = grid(params.t_end, params.dt_grid);

    let mut table = Table::new(
        &format!(
            "E13 — Kurtz convergence: {} density gap to the mean-field ODE",
            params.sampler.name()
        ),
        &[
            "n",
            "seeds",
            "sup-dist mean",
            "sup-dist std",
            "sqrt(n)·mean",
            "species",
            "reactions",
        ],
    );

    let mut gap_points = Vec::new();
    let mut selfloop_series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    let selfloop_density = |network: &ReactionNetwork<CirclesState>, row: &[f64]| -> f64 {
        network
            .species()
            .iter()
            .map(|(id, s)| f64::from(s.braket.is_self_loop()) * row[id as usize])
            .sum()
    };

    for &n in &params.ns {
        let counts = profile_counts(n, &params.profile);
        let mut initial = CountConfig::new();
        for (i, &c) in counts.iter().enumerate() {
            initial.insert(support[i], c);
        }
        let x0 = network.densities(&network.counts_from_config(&initial).expect("known species"));
        let ode = ode_density_trajectory(&network, x0, &times, params.dt_ode).expect("valid grid");

        let trajectories = run_seeded(
            &seed_range(params.seeds),
            params.threads,
            |seed| match params.sampler {
                TrajectorySampler::Ssa => {
                    let mut rng = StdRng::seed_from_u64(seed);
                    ssa_density_trajectory(&network, &initial, &mut rng, &times, u64::MAX)
                        .expect("ssa trajectory")
                }
                TrajectorySampler::Count => {
                    count_density_trajectory(&network, &protocol, &initial, seed, &times)
                }
            },
        );
        let gaps: Vec<f64> = trajectories.iter().map(|t| t.sup_distance(&ode)).collect();
        let summary = Summary::from_samples(&gaps);
        gap_points.push((n as f64, summary.mean));
        table.push_row(vec![
            n.to_string(),
            params.seeds.to_string(),
            fmt_f64(summary.mean),
            fmt_f64(summary.std),
            fmt_f64(summary.mean * (n as f64).sqrt()),
            network.species_count().to_string(),
            network.reaction_count().to_string(),
        ]);

        // Self-loop density series for the smallest and largest n.
        if n == *params.ns.first().expect("ns nonempty")
            || n == *params.ns.last().expect("ns nonempty")
        {
            let series: Vec<(f64, f64)> = times
                .iter()
                .zip(&trajectories[0].rows)
                .map(|(&t, row)| (t, selfloop_density(&network, row)))
                .collect();
            selfloop_series.push((format!("{} n={n}", params.sampler.name()), series));
        }
        if n == *params.ns.last().expect("ns nonempty") {
            let series: Vec<(f64, f64)> = times
                .iter()
                .zip(&ode.rows)
                .map(|(&t, row)| (t, selfloop_density(&network, row)))
                .collect();
            selfloop_series.push(("mean-field ODE".to_string(), series));
        }
    }

    if gap_points.len() >= 2 {
        let slope = log_log_slope(&gap_points);
        table.push_row(vec![
            "slope".to_string(),
            "-".to_string(),
            format!("n^{slope:.2}"),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
            "-".to_string(),
        ]);
    }

    let mut gap_plot = LinePlot::new(format!(
        "E13: {} vs mean-field sup-distance",
        params.sampler.name()
    ))
    .axis_labels("n", "sup-norm density gap")
    .log_x()
    .log_y()
    .with_series("measured", gap_points.clone());
    if let Some(&(n0, g0)) = gap_points.first() {
        let reference: Vec<(f64, f64)> = gap_points
            .iter()
            .map(|&(n, _)| (n, g0 * (n0 / n).sqrt()))
            .collect();
        gap_plot = gap_plot.with_series("c/sqrt(n)", reference);
    }

    let mut traj_plot = LinePlot::new("E13: self-loop density, SSA vs ODE")
        .axis_labels("parallel time", "self-loop density");
    for (label, series) in selfloop_series {
        traj_plot = traj_plot.with_series(label, series);
    }

    (
        table,
        vec![
            ("e13_supdist".to_string(), gap_plot),
            ("e13_trajectories".to_string(), traj_plot),
        ],
    )
}

/// Runs E13 and returns the table.
pub fn run(params: &Params) -> Table {
    run_with_figures(params).0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_counts_sum_and_round() {
        assert_eq!(profile_counts(10, &[0.5, 0.3, 0.2]), vec![5, 3, 2]);
        assert_eq!(profile_counts(7, &[0.5, 0.5]).iter().sum::<usize>(), 7);
        assert_eq!(profile_counts(5, &[1.0, 1.0, 1.0]).iter().sum::<usize>(), 5);
    }

    #[test]
    fn grid_includes_endpoints() {
        let g = grid(4.0, 1.0);
        assert_eq!(g, vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn count_sampler_tracks_the_ode_where_ssa_cannot_go() {
        // One count-engine trajectory at n = 200k (an SSA event loop at this
        // scale is already painful) must track the ODE to ~1%.
        let params = Params::quick();
        let protocol = CirclesProtocol::new(params.k).expect("k >= 1");
        let support: Vec<CirclesState> = (0..params.k).map(|i| protocol.input(&Color(i))).collect();
        let network =
            ReactionNetwork::from_protocol(&protocol, &support, 1_000_000).expect("closure fits");
        let times = grid(params.t_end, params.dt_grid);
        let n = 200_000;
        let counts = profile_counts(n, &params.profile);
        let mut initial = CountConfig::new();
        for (i, &c) in counts.iter().enumerate() {
            initial.insert(support[i], c);
        }
        let traj = count_density_trajectory(&network, &protocol, &initial, 3, &times);
        let x0 = network.densities(&network.counts_from_config(&initial).expect("known species"));
        let ode = ode_density_trajectory(&network, x0, &times, params.dt_ode).expect("valid grid");
        let gap = traj.sup_distance(&ode);
        assert!(
            gap < 0.01,
            "count trajectory strays {gap} from the ODE at n = {n}"
        );
        assert!(
            (traj.rows[0].iter().sum::<f64>() - 1.0).abs() < 1e-9,
            "densities must normalize"
        );
    }

    #[test]
    fn count_sampler_gap_shrinks_with_n() {
        let (table, _) = run_with_figures(&Params::quick().with_sampler(TrajectorySampler::Count));
        assert_eq!(table.len(), 3);
        let small: f64 = table.rows()[0][2].parse().unwrap();
        let large: f64 = table.rows()[1][2].parse().unwrap();
        assert!(
            large < small,
            "count-sampled gap must shrink with n: {small} vs {large}"
        );
    }

    #[test]
    fn gap_shrinks_with_n() {
        let (table, figures) = run_with_figures(&Params::quick());
        // Two n rows + slope row.
        assert_eq!(table.len(), 3);
        let small: f64 = table.rows()[0][2].parse().unwrap();
        let large: f64 = table.rows()[1][2].parse().unwrap();
        assert!(
            large < small,
            "gap must shrink with n: {small} (n=32) vs {large} (n=256)"
        );
        assert_eq!(figures.len(), 2);
        assert!(figures[0].1.to_svg().contains("sup-norm"));
    }
}
