//! The experiment suite E1–E17 (see `DESIGN.md` §7 and `EXPERIMENTS.md`).
//!
//! Each experiment is a parameterized function returning a [`Table`]; the
//! parameter structs provide [`Default`] (paper-scale) and `quick()`
//! (CI-scale) presets. The `pp-bench` binaries run the defaults and write
//! the tables under `results/`. Figure-shaped experiments (E13, E14, E16,
//! E17) additionally expose `run_with_figures`, returning
//! [`LinePlot`](crate::plot::LinePlot)s that the binaries render to
//! `results/*.svg`.
//!
//! [`Table`]: crate::table::Table

pub mod e01_state_complexity;
pub mod e02_convergence_n;
pub mod e03_convergence_k;
pub mod e04_exchanges;
pub mod e05_schedulers;
pub mod e06_baselines;
pub mod e07_ties;
pub mod e08_unordered;
pub mod e09_verification;
pub mod e10_ablation;
pub mod e11_faults;
pub mod e12_exact_expectations;
pub mod e13_meanfield;
pub mod e14_energy;
pub mod e15_topology;
pub mod e16_binary_landscape;
pub mod e17_propagation;
