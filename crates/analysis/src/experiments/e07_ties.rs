//! E7 — behaviour under ties: the stall the theory predicts.
//!
//! Paper anchor: §4 ("Handling ties") and the contrapositive of Lemmas 3.2 +
//! 3.6: with a tie, *no* self-loop survives stabilization, so output rule 2
//! eventually never fires and outputs freeze at historical values. This
//! experiment verifies the zero-self-loop prediction exhaustively on the
//! final configurations, and measures where the frozen outputs land (the
//! fraction pointing at one of the tied winners).

use circles_core::prediction::{braket_config_of_population, self_loop_colors};
use circles_core::CirclesProtocol;
use pp_extensions::ties::{winning_output_fraction, TieAnalysis};
use pp_protocol::{Population, Protocol};

use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::trial::Backend;
use crate::workloads::{shuffled, tie_workload_balanced};

/// Parameters for E7.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size.
    pub n: usize,
    /// `(k, ways)` tie configurations.
    pub ties: Vec<(u16, u16)>,
    /// Seeds per configuration.
    pub seeds: u64,
    /// Interaction budget.
    pub max_steps: u64,
    /// Worker threads.
    pub threads: usize,
    /// Which engine executes the runs. Tie workloads still reach silence
    /// (outputs stall, state changes do not persist), so both engines
    /// apply; the count backend is the default, as in E2/E6.
    pub backend: Backend,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 120,
            ties: vec![(2, 2), (3, 2), (3, 3), (4, 2), (4, 4), (6, 3)],
            seeds: 32,
            max_steps: 500_000_000,
            threads: crate::runner::default_threads(),
            backend: Backend::Count,
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 12,
            ties: vec![(2, 2), (3, 3)],
            seeds: 4,
            max_steps: 10_000_000,
            threads: 2,
            backend: Backend::Count,
        }
    }

    /// The same preset on the other backend.
    pub fn with_backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }
}

struct TieRun {
    self_loops_at_end: usize,
    consensus: bool,
    winning_fraction: f64,
}

fn one_run(n: usize, k: u16, ways: u16, seed: u64, max_steps: u64, backend: Backend) -> TieRun {
    let protocol = CirclesProtocol::new(k).expect("k >= 1");
    // Balanced ties keep loser colors populated, so the output-fraction
    // measurement is informative (losers' frozen outputs can point at
    // losing colors).
    let inputs = shuffled(tie_workload_balanced(n, k, ways), seed);
    let analysis = TieAnalysis::of(&inputs, k).expect("valid tie workload");
    assert!(analysis.is_tie());
    let outcome = backend
        .run_to_silence(&protocol, &inputs, seed, max_steps)
        .expect("tie run failed");
    assert!(outcome.stabilized, "tied instance did not stabilize");
    let population = Population::from_states(outcome.config.to_state_vec());
    let brakets = braket_config_of_population(&population);
    let outputs: Vec<circles_core::Color> = population.iter().map(|s| protocol.output(s)).collect();
    let unanimous = outputs.windows(2).all(|w| w[0] == w[1]);
    TieRun {
        self_loops_at_end: self_loop_colors(&brakets).iter().map(|(_, c)| c).sum(),
        consensus: unanimous,
        winning_fraction: winning_output_fraction(&outputs, &analysis),
    }
}

/// Runs E7 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        &format!(
            "E7 — tie behaviour: the predicted output stall ({} backend)",
            params.backend.name()
        ),
        &[
            "k",
            "tie ways",
            "n",
            "seeds",
            "terminal self-loops (must be 0)",
            "runs reaching consensus anyway",
            "winner-pointing output fraction mean",
            "fraction min",
        ],
    );
    for &(k, ways) in &params.ties {
        let runs = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
            one_run(params.n, k, ways, seed, params.max_steps, params.backend)
        });
        let total_loops: usize = runs.iter().map(|r| r.self_loops_at_end).sum();
        let consensus_count = runs.iter().filter(|r| r.consensus).count();
        let fractions: Vec<f64> = runs.iter().map(|r| r.winning_fraction).collect();
        let summary = Summary::from_samples(&fractions);
        table.push_row(vec![
            k.to_string(),
            ways.to_string(),
            params.n.to_string(),
            params.seeds.to_string(),
            total_loops.to_string(),
            format!("{consensus_count}/{}", runs.len()),
            fmt_f64(summary.mean),
            fmt_f64(summary.min),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_terminal_self_loops_under_ties_on_both_backends() {
        for backend in Backend::ALL {
            let table = run(&Params::quick().with_backend(backend));
            for row in table.rows() {
                assert_eq!(
                    row[4],
                    "0",
                    "self-loop survived a tie on {}: {row:?}",
                    backend.name()
                );
            }
        }
    }
}
