//! E9 — the exhaustive verification grid.
//!
//! Paper anchor: Theorems 3.4 and 3.7 and Lemma 3.6 are ∀-schedule claims;
//! for every input profile on the grid this experiment model-checks the
//! three facts of `DESIGN.md` §5 (exchange DAG, unique predicted terminal,
//! majority-only self-loops) — a *complete* per-instance verification under
//! weak fairness — and cross-validates small instances on the full state
//! space with the global-fairness BSCC criterion.

use circles_core::Color;
use pp_mc::circles::{verify_circles_full, verify_circles_instance};
use pp_mc::ExploreLimits;

use crate::table::Table;

/// Parameters for E9.
#[derive(Debug, Clone)]
pub struct Params {
    /// `(k, max_n)` pairs: verify every input profile with `n` from 2 to
    /// `max_n` over `k` colors.
    pub grids: Vec<(u16, usize)>,
    /// `(k, max_n)` pairs for the more expensive full-state-space check.
    pub full_grids: Vec<(u16, usize)>,
    /// Exploration limits per instance.
    pub limits: ExploreLimits,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            grids: vec![(2, 12), (3, 9), (4, 7), (5, 6), (6, 5)],
            full_grids: vec![(2, 6), (3, 5)],
            limits: ExploreLimits::default(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            grids: vec![(2, 5), (3, 4)],
            full_grids: vec![(2, 4)],
            limits: ExploreLimits::default(),
        }
    }
}

/// All color-count profiles (compositions of `n` into `k` parts, zeros
/// allowed). Color identities matter to Circles (weights are cyclic
/// distances), so profiles are *not* deduplicated up to permutation.
pub fn enumerate_profiles(n: usize, k: u16) -> Vec<Vec<usize>> {
    fn rec(remaining: usize, slots: usize, prefix: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if slots == 1 {
            prefix.push(remaining);
            out.push(prefix.clone());
            prefix.pop();
            return;
        }
        for take in 0..=remaining {
            prefix.push(take);
            rec(remaining - take, slots - 1, prefix, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(n, usize::from(k), &mut Vec::new(), &mut out);
    out
}

fn profile_to_inputs(profile: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in profile.iter().enumerate() {
        for _ in 0..count {
            inputs.push(Color(color as u16));
        }
    }
    inputs
}

/// Runs E9 and returns the table.
///
/// # Panics
///
/// Panics when any instance fails verification — a verification failure
/// falsifies the paper (or this implementation) and must halt the harness.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E9 — exhaustive verification grid (weak fairness, facts 1-3)",
        &[
            "k",
            "n",
            "instances",
            "verified",
            "ties among them",
            "max braket configs",
            "full-space check",
            "full max configs",
        ],
    );
    for &(k, max_n) in &params.grids {
        for n in 2..=max_n {
            let mut instances = 0usize;
            let mut verified = 0usize;
            let mut ties = 0usize;
            let mut max_configs = 0usize;
            for profile in enumerate_profiles(n, k) {
                let inputs = profile_to_inputs(&profile);
                if inputs.is_empty() {
                    continue;
                }
                instances += 1;
                let report =
                    verify_circles_instance(&inputs, k, params.limits).expect("exploration failed");
                max_configs = max_configs.max(report.config_count);
                if report.winner.is_none() {
                    ties += 1;
                }
                assert!(
                    report.verified,
                    "instance {profile:?} (k={k}) failed verification: {report:?}"
                );
                verified += 1;
            }
            let full = params
                .full_grids
                .iter()
                .any(|&(fk, fn_)| fk == k && n <= fn_);
            let (full_status, full_max) = if full {
                let mut full_max = 0usize;
                for profile in enumerate_profiles(n, k) {
                    let inputs = profile_to_inputs(&profile);
                    if inputs.is_empty() {
                        continue;
                    }
                    let report = verify_circles_full(&inputs, k, params.limits)
                        .expect("full exploration failed");
                    full_max = full_max.max(report.config_count);
                    let has_winner = circles_core::GreedyDecomposition::from_inputs(&inputs, k)
                        .expect("valid")
                        .winner()
                        .is_some();
                    assert!(report.eventually_silent, "not silent: {profile:?}");
                    assert_eq!(
                        report.stably_computes, has_winner,
                        "BSCC criterion mismatch on {profile:?}"
                    );
                }
                ("pass".to_string(), full_max.to_string())
            } else {
                ("-".to_string(), "-".to_string())
            };
            table.push_row(vec![
                k.to_string(),
                n.to_string(),
                instances.to_string(),
                verified.to_string(),
                ties.to_string(),
                max_configs.to_string(),
                full_status,
                full_max,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_enumeration_counts() {
        // Compositions of n into k parts: C(n+k-1, k-1).
        assert_eq!(enumerate_profiles(4, 2).len(), 5);
        assert_eq!(enumerate_profiles(5, 3).len(), 21);
    }

    #[test]
    fn quick_grid_verifies() {
        let table = run(&Params::quick());
        assert!(!table.is_empty());
        for row in table.rows() {
            assert_eq!(row[2], row[3], "not all instances verified: {row:?}");
        }
    }
}
