//! E15 — how load-bearing is the complete interaction graph?
//!
//! Paper anchor: Definition 1.2 quantifies weak fairness over *all* pairs —
//! implicitly the complete graph. Theorem 3.4 (finitely many exchanges)
//! survives any topology, but Lemma 3.6's argument summons an exchange
//! between two specific agents that an incomplete graph may never let meet,
//! so on restricted topologies Circles can (a) freeze in a non-predicted
//! bra-ket multiset with wrong outputs, or (b) retain two non-adjacent
//! self-loops of different colors and oscillate forever. This experiment
//! sweeps classical topologies and reports how often each failure mode
//! occurs and what the slowdown is when runs do finish.

use circles_core::{prediction, CirclesProtocol, Color};
use pp_protocol::{Population, Simulation};
use pp_topology::{is_graph_silent, EdgeScheduler, InteractionGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::runner::{run_seeded, seed_range};
use crate::stats::Summary;
use crate::table::{fmt_f64, Table};
use crate::workloads::{margin_workload, shuffled, true_winner};

/// Parameters for E15.
#[derive(Debug, Clone)]
pub struct Params {
    /// Population size. Must be a perfect square ≥ 9 so the grid topology
    /// is well-formed (validated by [`run`]).
    pub n: usize,
    /// Color counts to sweep.
    pub ks: Vec<u16>,
    /// Seeds per (topology, k) cell — each seed reshuffles the input
    /// placement on the graph.
    pub seeds: u64,
    /// Winner margin as a fraction of `n`.
    pub margin_fraction: f64,
    /// Interaction budget per run; non-silent runs are cut off here and
    /// scored as non-stabilized.
    pub max_steps: u64,
    /// Degree of the random regular topology.
    pub regular_degree: usize,
    /// Seed for generating the random topologies (fixed so every cell sees
    /// the same graph).
    pub graph_seed: u64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for Params {
    fn default() -> Self {
        Params {
            n: 64,
            ks: vec![2, 4],
            seeds: 24,
            margin_fraction: 0.15,
            max_steps: 8_000_000,
            regular_degree: 4,
            graph_seed: 0xC1AC1E5,
            threads: crate::runner::default_threads(),
        }
    }
}

impl Params {
    /// CI-scale preset.
    pub fn quick() -> Self {
        Params {
            n: 16,
            ks: vec![2],
            seeds: 6,
            margin_fraction: 0.25,
            max_steps: 2_000_000,
            regular_degree: 4,
            graph_seed: 0xC1AC1E5,
            threads: 2,
        }
    }
}

fn topologies(params: &Params) -> Vec<InteractionGraph> {
    let n = params.n;
    let side = (n as f64).sqrt().round() as usize;
    assert_eq!(
        side * side,
        n,
        "E15 requires a square n for the grid topology"
    );
    let mut rng = StdRng::seed_from_u64(params.graph_seed);
    vec![
        InteractionGraph::complete(n).expect("n >= 2"),
        InteractionGraph::random_regular(n, params.regular_degree, &mut rng)
            .expect("regular graph exists"),
        InteractionGraph::grid(side, side).expect("grid"),
        InteractionGraph::cycle(n).expect("cycle"),
        InteractionGraph::path(n).expect("path"),
        InteractionGraph::star(n).expect("star"),
    ]
}

/// Per-run verdict on a restricted topology.
#[derive(Debug, Clone, Copy)]
struct Verdict {
    silent: bool,
    predicted_brakets: bool,
    correct_outputs: bool,
    parallel_time: f64,
}

fn run_one(
    protocol: &CirclesProtocol,
    graph: &InteractionGraph,
    inputs: &[Color],
    seed: u64,
    max_steps: u64,
) -> Verdict {
    let k = protocol.k();
    let population = Population::from_inputs(protocol, inputs);
    let n = population.len();
    let scheduler = EdgeScheduler::new(graph.clone());
    let mut sim = Simulation::new(protocol, population, scheduler, seed);

    // Quiescence on a restricted topology is *graph* silence: no edge
    // carries a productive interaction. The engine's own silence notion
    // ranges over all pairs and would misclassify frozen sparse-graph runs
    // as still running.
    let chunk = (4 * n as u64).max(64);
    let mut silent = is_graph_silent(graph, sim.population(), protocol);
    while !silent && sim.stats().steps < max_steps {
        let budget = chunk.min(max_steps - sim.stats().steps);
        sim.run_observed(budget, |_| ())
            .expect("edge scheduler never fails");
        silent = is_graph_silent(graph, sim.population(), protocol);
    }

    let winner = true_winner(inputs, k);
    let predicted = prediction::predicted_brakets(inputs, k).expect("nonempty inputs");
    let brakets = prediction::braket_config_of_population(sim.population());
    let outputs = sim.population().output_counts(protocol);
    let correct_outputs = outputs.len() == 1 && outputs.keys().next() == Some(&winner);
    Verdict {
        silent,
        predicted_brakets: brakets == predicted,
        correct_outputs,
        parallel_time: if silent {
            sim.stats().last_change_step as f64 / n as f64
        } else {
            f64::NAN
        },
    }
}

/// Runs E15 and returns the table.
pub fn run(params: &Params) -> Table {
    let mut table = Table::new(
        "E15 — Circles on restricted interaction topologies",
        &[
            "topology",
            "diameter",
            "k",
            "seeds",
            "silent",
            "predicted bra-kets",
            "correct outputs",
            "parallel time (silent runs)",
        ],
    );
    for graph in topologies(params) {
        for &k in &params.ks {
            let margin = ((params.n as f64 * params.margin_fraction) as usize).max(1);
            let base_inputs = margin_workload(params.n, k, margin);
            let n = base_inputs.len();
            let side_ok = n == params.n;
            // margin_workload may return slightly fewer agents; regenerate
            // topology-compatible inputs by padding with the winner.
            let mut inputs = base_inputs;
            if !side_ok {
                let winner = true_winner(&inputs, k);
                while inputs.len() < params.n {
                    inputs.push(winner);
                }
            }
            let protocol = CirclesProtocol::new(k).expect("k >= 1");
            let verdicts = run_seeded(&seed_range(params.seeds), params.threads, |seed| {
                let placed = shuffled(inputs.clone(), seed);
                run_one(&protocol, &graph, &placed, seed, params.max_steps)
            });
            let frac = |f: &dyn Fn(&Verdict) -> bool| {
                verdicts.iter().filter(|v| f(v)).count() as f64 / verdicts.len() as f64
            };
            let silent_times: Vec<f64> = verdicts
                .iter()
                .filter(|v| v.silent)
                .map(|v| v.parallel_time)
                .collect();
            let time_cell = if silent_times.is_empty() {
                "-".to_string()
            } else {
                fmt_f64(Summary::from_samples(&silent_times).mean)
            };
            table.push_row(vec![
                graph.name().to_string(),
                graph.diameter().map_or("-".into(), |d| d.to_string()),
                k.to_string(),
                params.seeds.to_string(),
                format!("{:.2}", frac(&|v| v.silent)),
                format!("{:.2}", frac(&|v| v.predicted_brakets)),
                format!("{:.2}", frac(&|v| v.correct_outputs)),
                time_cell,
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_always_correct_and_predicted() {
        let table = run(&Params::quick());
        let complete_rows: Vec<_> = table
            .rows()
            .iter()
            .filter(|r| r[0].starts_with("complete"))
            .collect();
        assert!(!complete_rows.is_empty());
        for row in complete_rows {
            assert_eq!(row[4], "1.00", "complete graph must be silent: {row:?}");
            assert_eq!(
                row[5], "1.00",
                "complete graph must match Lemma 3.6: {row:?}"
            );
            assert_eq!(row[6], "1.00", "complete graph must be correct: {row:?}");
        }
    }

    #[test]
    fn all_topologies_report() {
        let p = Params::quick();
        let table = run(&p);
        assert_eq!(table.len(), 6 * p.ks.len());
    }
}
