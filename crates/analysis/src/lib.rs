//! Experiment harness for the Circles reproduction.
//!
//! The paper is a brief announcement without an evaluation section, so the
//! "tables and figures" this crate regenerates are the paper's checkable
//! claims plus the experiment suite E1–E17 defined in `DESIGN.md` §7 and
//! recorded in `EXPERIMENTS.md`. Each experiment lives in [`experiments`]
//! as a parameterized function returning a [`Table`]; the `pp-bench` crate
//! provides one binary per experiment that runs the full-scale parameters
//! and writes `results/*.md` / `results/*.csv` (and `results/*.svg` for the
//! figure-shaped experiments).
//!
//! Supporting modules:
//!
//! - [`stats`]: summaries (mean/std/min/median/max/percentiles) and log-log
//!   slope estimation for scaling exponents.
//! - [`table`]: plain CSV + Markdown table rendering (no external deps).
//! - [`plot`]: dependency-free SVG line charts for the figures.
//! - [`runner`]: seed-parallel trial execution on `std::thread`.
//! - [`workloads`]: input-multiset generators (controlled margins,
//!   geometric profiles, adversarially close races).
//! - [`trial`]: one-shot protocol runs with a uniform measurement record.
//! - [`table_cache`]: on-disk persistence of discovered transition tables
//!   (`PP_TABLE_CACHE`), so sweeps load structure instead of rediscovering.
//! - [`journal`]: crash-tolerant JSONL results journal backing supervised
//!   sweep resume (skip already-settled `(sweep_seed, trial_seed)` pairs).
//! - [`epidemic`]: exact expectations for the output-propagation epidemic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod epidemic;
pub mod experiments;
pub mod journal;
pub mod plot;
pub mod runner;
pub mod stats;
pub mod table;
pub mod table_cache;
pub mod trial;
pub mod workloads;

pub use stats::Summary;
pub use table::Table;
