//! One-shot protocol trials with a uniform measurement record.

use circles_core::Color;
use pp_protocol::{
    CountingSimulation, FrameworkError, Population, Protocol, Scheduler, Simulation,
};

/// The measurements every experiment cares about, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialResult {
    /// Interactions until the last state change (exact).
    pub steps_to_silence: u64,
    /// Interactions until outputs were unanimous forever (exact).
    pub steps_to_consensus: u64,
    /// Number of state-changing interactions.
    pub state_changes: u64,
    /// Whether the run reached silence within budget.
    pub stabilized: bool,
    /// Whether the final unanimous output equals the expected winner.
    pub correct: bool,
}

/// Runs a protocol whose output is a [`Color`] to silence under the given
/// scheduler and compares the consensus with `expected`.
///
/// A run that exhausts `max_steps` without silence is reported with
/// `stabilized == false, correct == false` rather than as an error — for
/// baseline protocols, failing to stabilize is a *finding*.
///
/// # Errors
///
/// Propagates non-budget framework errors (scheduler misbehaviour).
pub fn run_trial<P, Sch>(
    protocol: &P,
    inputs: &[P::Input],
    scheduler: Sch,
    seed: u64,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    Sch: Scheduler<P::State>,
{
    let population = Population::from_inputs(protocol, inputs);
    let check_interval = (population.len() as u64).max(16);
    let mut sim = Simulation::new(protocol, population, scheduler, seed);
    match sim.run_until_silent(max_steps, check_interval) {
        Ok(report) => Ok(TrialResult {
            steps_to_silence: report.steps_to_silence,
            steps_to_consensus: report.steps_to_consensus,
            state_changes: report.state_changes,
            stabilized: true,
            correct: report.consensus == Some(expected),
        }),
        Err(FrameworkError::MaxStepsExceeded { .. }) => Ok(TrialResult {
            steps_to_silence: sim.stats().last_change_step,
            steps_to_consensus: max_steps,
            state_changes: sim.stats().state_changes,
            stabilized: false,
            correct: false,
        }),
        Err(e) => Err(e),
    }
}

/// Like [`run_trial`] but on the count-based engine (uniform-random
/// scheduling only) — the fast path for large populations.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_counting_trial<P>(
    protocol: &P,
    inputs: &[P::Input],
    seed: u64,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
{
    let mut sim = CountingSimulation::from_inputs(protocol, inputs, seed);
    let check_interval = (sim.n() as u64).max(64);
    match sim.run_until_silent(max_steps, check_interval) {
        Ok(report) => Ok(TrialResult {
            steps_to_silence: report.steps_to_silence,
            steps_to_consensus: report.steps_to_consensus,
            state_changes: report.state_changes,
            stabilized: true,
            correct: report.consensus == Some(expected),
        }),
        Err(FrameworkError::MaxStepsExceeded { .. }) => Ok(TrialResult {
            steps_to_silence: 0,
            steps_to_consensus: max_steps,
            state_changes: 0,
            stabilized: false,
            correct: false,
        }),
        Err(e) => Err(e),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::CirclesProtocol;
    use pp_protocol::UniformPairScheduler;

    #[test]
    fn circles_trial_is_correct() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = [0, 0, 0, 1, 2].map(Color).to_vec();
        let result = run_trial(
            &protocol,
            &inputs,
            UniformPairScheduler::new(),
            1,
            Color(0),
            1_000_000,
        )
        .unwrap();
        assert!(result.stabilized);
        assert!(result.correct);
        assert!(result.steps_to_consensus <= result.steps_to_silence + 1);
    }

    #[test]
    fn budget_exhaustion_is_a_finding_not_an_error() {
        let protocol = CirclesProtocol::new(4).unwrap();
        let inputs: Vec<Color> = (0..64).map(|i| Color((i % 3) as u16)).collect();
        // Color 0 wins 22/21/21; budget of 3 steps cannot stabilize.
        let result = run_trial(
            &protocol,
            &inputs,
            UniformPairScheduler::new(),
            2,
            Color(0),
            3,
        )
        .unwrap();
        assert!(!result.stabilized);
        assert!(!result.correct);
    }

    #[test]
    fn counting_trial_matches_expectation() {
        let protocol = CirclesProtocol::new(2).unwrap();
        let inputs: Vec<Color> = (0..50).map(|i| Color(u16::from(i < 30))).collect();
        let result = run_counting_trial(&protocol, &inputs, 3, Color(1), 10_000_000).unwrap();
        assert!(result.stabilized);
        assert!(result.correct);
    }
}
