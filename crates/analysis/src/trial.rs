//! One-shot protocol trials with a uniform measurement record, the
//! backend-dispatching [`TrialRunner`], and its crash-tolerant
//! [`SupervisedRunner`] wrapper (panic isolation, per-trial deadlines with
//! checkpointed retry, journaled sweep resume).

use std::collections::BTreeMap;
use std::ops::ControlFlow;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::{Duration, Instant};

use circles_core::Color;
use pp_protocol::{
    Activity, CompactCountEngine, CountConfig, CountEngine, FrameworkError, Population, Protocol,
    RunReport, Scheduler, Simulation, SparseActivity, TableSnapshot, TransitionTable,
    UniformCountScheduler, UniformPairScheduler,
};
use rand::RngCore;

use crate::journal::{JournalEntry, SweepJournal};
use crate::runner::{default_threads, run_seeded, trial_rng};
use crate::table_cache::TableCache;

/// The measurements every experiment cares about, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialResult {
    /// Interactions until the last state change (exact).
    pub steps_to_silence: u64,
    /// Interactions until outputs were unanimous forever (exact).
    pub steps_to_consensus: u64,
    /// Number of state-changing interactions.
    pub state_changes: u64,
    /// Whether the run reached silence within budget.
    pub stabilized: bool,
    /// Whether the final unanimous output equals the expected winner.
    pub correct: bool,
}

/// What a *supervised* trial settled to; see [`SupervisedRunner`].
///
/// Where the unsupervised [`TrialRunner::run`] panics the whole sweep when
/// one trial dies, supervision confines every failure to its seed and
/// records it as a typed verdict, so one bad trial costs one row — never
/// the sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialVerdict {
    /// The trial ran to its normal conclusion (which may still be a
    /// `stabilized == false` budget-exhaustion finding).
    Completed(TrialResult),
    /// The trial panicked (or failed on a framework error); `message` is
    /// the panic payload or error rendering. Poisoning is deterministic in
    /// the seed, so a resumed sweep does **not** retry it.
    Poisoned {
        /// The captured panic message or framework-error rendering.
        message: String,
    },
    /// The trial overran its per-trial deadline `attempts` times (each
    /// retry resuming from the in-memory checkpoint taken when the previous
    /// deadline fired) and supervision gave up. Deadlines measure machine
    /// load, not the trial, so a resumed sweep retries these seeds.
    DeadlineExceeded {
        /// How many attempts were made before giving up (`>= 1`).
        attempts: u32,
    },
}

impl TrialVerdict {
    /// The completed result, when there is one.
    pub fn result(&self) -> Option<&TrialResult> {
        match self {
            TrialVerdict::Completed(result) => Some(result),
            _ => None,
        }
    }

    /// Whether the trial ran to its normal conclusion.
    pub fn is_completed(&self) -> bool {
        matches!(self, TrialVerdict::Completed(_))
    }
}

/// Which simulation engine executes a trial.
///
/// Both backends expose the same measurement surface
/// ([`RunReport`]-shaped), so experiments can sweep
/// them interchangeably; see the README's "Choosing a backend" section.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// The agent-indexed engine ([`Simulation`]) under the uniform-random
    /// scheduler: `O(1)` per interaction, pays for every silent interaction.
    Indexed,
    /// The batched count engine ([`CountEngine`]): one cheap update per
    /// state-*changing* interaction — the only practical choice for
    /// `n ≳ 10^5`.
    Count,
}

/// The outcome of a backend-dispatched run to silence: the measurement
/// report, the final anonymous configuration (so experiments can inspect
/// terminal states — self-loops, conservation, output multisets — without
/// caring which engine ran), and whether silence was reached within budget.
#[derive(Debug, Clone)]
pub struct SilenceOutcome<P: Protocol> {
    /// Report snapshot at silence (or at budget exhaustion).
    pub report: RunReport<P::Output>,
    /// The final configuration as a state multiset.
    pub config: CountConfig<P::State>,
    /// Whether the run actually reached silence within `max_steps`.
    pub stabilized: bool,
}

impl Backend {
    /// Both backends, for sweeps.
    pub const ALL: [Backend; 2] = [Backend::Indexed, Backend::Count];

    /// Stable name used in tables, benches and reports.
    pub fn name(self) -> &'static str {
        match self {
            Backend::Indexed => "indexed",
            Backend::Count => "count",
        }
    }

    /// Runs `protocol` from `inputs` to silence on this backend under
    /// uniform-random scheduling, returning report and final configuration.
    /// The RNG is the counter-based trial stream `(0, seed)` (see
    /// [`trial_rng`](crate::runner::trial_rng())), so the trajectory is a
    /// pure function of the seed. Budget exhaustion is a recorded finding
    /// (`stabilized == false`), not an error — matching [`run_trial`]'s
    /// convention.
    ///
    /// This is the protocol-agnostic entry point experiments use when they
    /// need the *terminal configuration* and not just `TrialResult` numbers
    /// (E7 inspects surviving self-loops, E8 checks bra-ket conservation).
    ///
    /// # Errors
    ///
    /// Propagates non-budget framework errors (scheduler misbehaviour).
    pub fn run_to_silence<P>(
        self,
        protocol: &P,
        inputs: &[P::Input],
        seed: u64,
        max_steps: u64,
    ) -> Result<SilenceOutcome<P>, FrameworkError>
    where
        P: Protocol,
    {
        match self {
            Backend::Indexed => {
                let population = Population::from_inputs(protocol, inputs);
                let check_interval = (population.len() as u64).max(16);
                let mut sim = Simulation::with_rng(
                    protocol,
                    population,
                    UniformPairScheduler::new(),
                    trial_rng(0, seed),
                );
                let stabilized = match sim.run_until_silent(max_steps, check_interval) {
                    Ok(_) => true,
                    Err(FrameworkError::MaxStepsExceeded { .. }) => false,
                    Err(e) => return Err(e),
                };
                Ok(SilenceOutcome {
                    report: sim.report(),
                    config: sim.into_population().to_count_config(),
                    stabilized,
                })
            }
            Backend::Count => {
                let config: CountConfig<P::State> =
                    inputs.iter().map(|i| protocol.input(i)).collect();
                let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
                    protocol,
                    config,
                    UniformCountScheduler::new(),
                    trial_rng(0, seed),
                );
                let stabilized = match engine.run_until_silent(max_steps) {
                    Ok(_) => true,
                    Err(FrameworkError::MaxStepsExceeded { .. }) => false,
                    Err(e) => return Err(e),
                };
                Ok(SilenceOutcome {
                    report: engine.report(),
                    config: engine.config(),
                    stabilized,
                })
            }
        }
    }

    /// Runs one uniform-random trial on this backend — the
    /// backend-dispatching form of [`run_trial`]/[`run_count_trial`] that
    /// experiments sweep over a `Params::backend` field. Equivalent to
    /// [`trial_stream`](Self::trial_stream) with sweep seed `0`.
    ///
    /// # Errors
    ///
    /// Propagates non-budget framework errors (budget exhaustion is a
    /// recorded finding, as in [`run_trial`]).
    pub fn trial<P>(
        self,
        protocol: &P,
        inputs: &[P::Input],
        seed: u64,
        expected: Color,
        max_steps: u64,
    ) -> Result<TrialResult, FrameworkError>
    where
        P: Protocol<Output = Color>,
    {
        self.trial_stream(protocol, inputs, 0, seed, expected, max_steps)
    }

    /// [`trial`](Self::trial) on the explicit counter-based stream
    /// `(sweep_seed, seed)` — the form [`TrialRunner`] dispatches, whose
    /// results depend only on the key pair, not on threading or sweep
    /// order.
    ///
    /// # Errors
    ///
    /// Propagates non-budget framework errors.
    pub fn trial_stream<P>(
        self,
        protocol: &P,
        inputs: &[P::Input],
        sweep_seed: u64,
        seed: u64,
        expected: Color,
        max_steps: u64,
    ) -> Result<TrialResult, FrameworkError>
    where
        P: Protocol<Output = Color>,
    {
        let rng = trial_rng(sweep_seed, seed);
        match self {
            Backend::Indexed => run_trial_rng(
                protocol,
                inputs,
                UniformPairScheduler::new(),
                rng,
                expected,
                max_steps,
            ),
            Backend::Count => run_count_trial_rng(protocol, inputs, rng, expected, max_steps),
        }
    }

    /// Runs to silence on this backend like
    /// [`run_to_silence`](Self::run_to_silence), invoking `observer` once
    /// per *state-changing* interaction with
    /// `(initiator_before, responder_before, initiator_after,
    /// responder_after)`, in execution order — the protocol-agnostic hook
    /// E4-style work measurements need.
    ///
    /// On the indexed backend the observer runs inline. On the count
    /// backend the engine records its change-point trace (state pairs) and
    /// the observer replays it afterwards, recomputing each outcome through
    /// the protocol — same observations, same order, `O(state changes)`
    /// memory.
    ///
    /// # Errors
    ///
    /// Propagates non-budget framework errors.
    pub fn run_observed<P, F>(
        self,
        protocol: &P,
        inputs: &[P::Input],
        seed: u64,
        max_steps: u64,
        mut observer: F,
    ) -> Result<SilenceOutcome<P>, FrameworkError>
    where
        P: Protocol,
        F: FnMut(&P::State, &P::State, &P::State, &P::State),
    {
        match self {
            Backend::Indexed => {
                let population = Population::from_inputs(protocol, inputs);
                let check_interval = (population.len() as u64).max(16);
                let mut sim = Simulation::with_rng(
                    protocol,
                    population,
                    UniformPairScheduler::new(),
                    trial_rng(0, seed),
                );
                let observe = |step: &pp_protocol::StepReport<P::State>| {
                    if step.changed() {
                        observer(&step.before.0, &step.before.1, &step.after.0, &step.after.1);
                    }
                };
                let stabilized =
                    match sim.run_until_silent_observed(max_steps, check_interval, observe) {
                        Ok(_) => true,
                        Err(FrameworkError::MaxStepsExceeded { .. }) => false,
                        Err(e) => return Err(e),
                    };
                Ok(SilenceOutcome {
                    report: sim.report(),
                    config: sim.into_population().to_count_config(),
                    stabilized,
                })
            }
            Backend::Count => {
                let config: CountConfig<P::State> =
                    inputs.iter().map(|i| protocol.input(i)).collect();
                let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
                    protocol,
                    config,
                    UniformCountScheduler::new(),
                    trial_rng(0, seed),
                );
                engine.record_trace();
                let stabilized = match engine.run_until_silent(max_steps) {
                    Ok(_) => true,
                    Err(FrameworkError::MaxStepsExceeded { .. }) => false,
                    Err(e) => return Err(e),
                };
                let trace = engine.take_trace().expect("recording was on");
                for (a, b) in trace.pairs() {
                    let (ta, tb) = protocol.transition(a, b);
                    observer(a, b, &ta, &tb);
                }
                Ok(SilenceOutcome {
                    report: engine.report(),
                    config: engine.config(),
                    stabilized,
                })
            }
        }
    }
}

/// Runs batches of independent seeded trials for one backend, fanning out
/// over OS threads (`std::thread::scope` via [`run_seeded`] — no external
/// thread-pool dependency).
///
/// # Determinism
///
/// Each trial draws from the counter-based stream `(sweep_seed, seed)`
/// ([`trial_rng`]), and count-engine slot numbering is canonical, so the
/// `TrialResult` of a seed is a pure function of `(protocol, inputs,
/// sweep_seed, seed, max_steps, backend)`: identical at 1, 2 or 64 worker
/// threads, under any seed order, and — for warm sweeps — whatever the
/// shared table happened to contain. This is asserted by the
/// `determinism` integration tests and CI's byte-for-byte report diff.
///
/// # Example
///
/// ```
/// use circles_core::{CirclesProtocol, Color};
/// use pp_analysis::trial::{Backend, TrialRunner};
///
/// let protocol = CirclesProtocol::new(2).unwrap();
/// let inputs: Vec<Color> = (0..40).map(|i| Color(u16::from(i < 15))).collect();
/// let results = TrialRunner::new(Backend::Count)
///     .seeds(8)
///     .run(&protocol, &inputs, Color(0));
/// assert!(results.iter().all(|r| r.stabilized && r.correct));
/// ```
#[derive(Debug, Clone)]
pub struct TrialRunner {
    backend: Backend,
    threads: usize,
    max_steps: u64,
    seeds: Vec<u64>,
    warm: bool,
    sweep_seed: u64,
    table_cache: Option<std::path::PathBuf>,
}

impl TrialRunner {
    /// Creates a runner for `backend` with all available CPUs, an
    /// effectively unlimited step budget, seeds `0..32` and sweep seed `0`.
    pub fn new(backend: Backend) -> Self {
        TrialRunner {
            backend,
            threads: default_threads(),
            max_steps: u64::MAX / 2,
            seeds: (0..32).collect(),
            warm: false,
            sweep_seed: 0,
            table_cache: None,
        }
    }

    /// The backend this runner dispatches to.
    pub fn backend(&self) -> Backend {
        self.backend
    }

    /// Sets the number of worker threads (at least 1).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// Sets the per-trial interaction budget.
    pub fn max_steps(mut self, max_steps: u64) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Uses seeds `0..count`.
    pub fn seeds(mut self, count: u64) -> Self {
        self.seeds = (0..count).collect();
        self
    }

    /// Uses an explicit seed list.
    pub fn seed_list(mut self, seeds: Vec<u64>) -> Self {
        self.seeds = seeds;
        self
    }

    /// Selects the sweep-level stream key (default `0`): trials draw from
    /// the counter-based stream `(sweep_seed, seed)`, so two sweeps with
    /// different sweep seeds are statistically independent even over the
    /// same trial seeds.
    pub fn sweep_seed(mut self, sweep_seed: u64) -> Self {
        self.sweep_seed = sweep_seed;
        self
    }

    /// Enables warm-started trials on the [`Backend::Count`] backend: each
    /// [`run`](Self::run) threads one [`TransitionTable`] through all its
    /// trials, so only the first seed pays the `O(slots²)` protocol
    /// discovery and the rest bulk-load it. No effect on the indexed
    /// backend (which has no discovery phase). Use
    /// [`run_with_table`](Self::run_with_table) to share one table across
    /// several sweeps of the same protocol.
    pub fn warm(mut self, warm: bool) -> Self {
        self.warm = warm;
        self
    }

    /// Sets the directory [`run_cached`](Self::run_cached) persists
    /// discovered transition tables in, keyed by protocol identity
    /// fingerprint — see [`TableCache`].
    /// Without this, `run_cached` falls back to the `PP_TABLE_CACHE`
    /// environment variable, and with neither set behaves exactly like a
    /// warm [`run`](Self::run).
    pub fn table_cache_dir(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.table_cache = Some(dir.into());
        self
    }

    /// Runs one trial per seed in parallel and returns results in seed
    /// order.
    ///
    /// # Panics
    ///
    /// Panics when a trial fails on a framework error (scheduler
    /// misbehaviour) — budget exhaustion is a recorded finding, not an
    /// error.
    pub fn run<P>(&self, protocol: &P, inputs: &[P::Input], expected: Color) -> Vec<TrialResult>
    where
        P: Protocol<Output = Color> + Sync,
        P::Input: Sync,
        P::State: Send + Sync,
    {
        if self.warm && self.backend == Backend::Count {
            let table = TransitionTable::new();
            return self.run_with_table(protocol, inputs, expected, &table);
        }
        let backend = self.backend;
        let max_steps = self.max_steps;
        let sweep = self.sweep_seed;
        run_seeded(&self.seeds, self.threads, |seed| {
            backend
                .trial_stream(protocol, inputs, sweep, seed, expected, max_steps)
                .expect("trial failed")
        })
    }

    /// Like [`run`](Self::run) on the count backend, but warm-starting
    /// every trial from `table` and exporting each trial's discoveries back
    /// into it. When the table is empty the first seed runs alone (filling
    /// the table) before the rest fan out, so a sweep pays the one-time
    /// discovery exactly once; passing an already-warm table (e.g. from a
    /// previous sweep at the same `k`) skips even that.
    ///
    /// Falls back to [`run`](Self::run) semantics on the indexed backend,
    /// which has no discovery to share.
    ///
    /// # Panics
    ///
    /// Panics when a trial fails on a framework error.
    pub fn run_with_table<P>(
        &self,
        protocol: &P,
        inputs: &[P::Input],
        expected: Color,
        table: &TransitionTable<P>,
    ) -> Vec<TrialResult>
    where
        P: Protocol<Output = Color> + Sync,
        P::Input: Sync,
        P::State: Send + Sync,
    {
        if self.backend != Backend::Count {
            // No discovery to share on the indexed engine; run() cannot
            // re-enter the warm path for a non-Count backend.
            return self.run(protocol, inputs, expected);
        }
        let max_steps = self.max_steps;
        let sweep = self.sweep_seed;
        let mut results = Vec::with_capacity(self.seeds.len());
        let mut rest = &self.seeds[..];
        if table.is_empty() {
            if let Some((&first, tail)) = self.seeds.split_first() {
                results.push(
                    run_count_trial_warm_rng(
                        protocol,
                        inputs,
                        trial_rng(sweep, first),
                        expected,
                        max_steps,
                        table,
                    )
                    .expect("trial failed"),
                );
                rest = tail;
            }
        }
        // The sweep's epoch snapshot: one cheap handle captured here, shared
        // by every fanned-out trial. Trials still export their discoveries to
        // `table` as they finish, but none of them re-derive a snapshot — the
        // per-epoch view is what keeps warm materialization identical across
        // thread counts.
        let snap = table.snapshot();
        results.extend(run_seeded(rest, self.threads, |seed| {
            run_count_trial_warm_snap_rng(
                protocol,
                inputs,
                trial_rng(sweep, seed),
                expected,
                max_steps,
                &snap,
                table,
            )
            .expect("trial failed")
        }));
        results
    }

    /// Like [`run_with_table`](Self::run_with_table), but the table comes
    /// from (and returns to) the on-disk cache configured with
    /// [`table_cache_dir`](Self::table_cache_dir) (or ambiently via
    /// `PP_TABLE_CACHE`): a valid store for this protocol's identity
    /// fingerprint loads with **zero protocol calls** and every seed runs
    /// warm; a missing or invalid store degrades to cold discovery (invalid
    /// files are reported to stderr, never trusted), and the table is
    /// written back whenever the sweep grew it. Results are bit-identical
    /// in all three cases — the cache can only save time.
    ///
    /// With no cache configured, or on the indexed backend (which has no
    /// discovery to persist), this is exactly a warm [`run`](Self::run).
    ///
    /// The extra `Display`/`FromStr` bounds are the store's state codec;
    /// they are why this is a separate method rather than `run` behaviour.
    ///
    /// # Panics
    ///
    /// Panics when a trial fails on a framework error.
    pub fn run_cached<P>(
        &self,
        protocol: &P,
        inputs: &[P::Input],
        expected: Color,
    ) -> Vec<TrialResult>
    where
        P: Protocol<Output = Color> + Sync,
        P::Input: Sync,
        P::State: Send + Sync + std::fmt::Display + std::str::FromStr,
        <P::State as std::str::FromStr>::Err: std::fmt::Display,
    {
        let cache = match &self.table_cache {
            Some(dir) => Some(TableCache::new(dir.clone())),
            None => TableCache::from_env(),
        };
        let Some(cache) = cache else {
            return self.clone().warm(true).run(protocol, inputs, expected);
        };
        if self.backend != Backend::Count {
            return self.run(protocol, inputs, expected);
        }
        let (table, _status) = cache.load_or_empty(protocol);
        let loaded = (table.len(), table.active_pairs(), table.outcome_count());
        let results = self.run_with_table(protocol, inputs, expected, &table);
        if (table.len(), table.active_pairs(), table.outcome_count()) != loaded {
            // Best-effort persistence: a read-only cache dir degrades the
            // next sweep to cold discovery, nothing more.
            if let Err(e) = cache.store(protocol, &table) {
                eprintln!(
                    "table cache: could not persist {}: {e}",
                    cache.path_for(protocol).display()
                );
            }
        }
        results
    }

    /// Fans `f(seed)` out over this runner's seed list and thread pool,
    /// returning results in seed order — the escape hatch for experiments
    /// whose per-seed work is not a plain [`TrialResult`] trial (fault
    /// injection, model checking, …). The backend plays no role here; only
    /// the seed/thread configuration is used.
    pub fn run_with<T, F>(&self, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(u64) -> T + Sync,
    {
        run_seeded(&self.seeds, self.threads, f)
    }

    /// Wraps this runner in a [`SupervisedRunner`]: same seeds, threads and
    /// backend, but every trial is panic-isolated, optionally
    /// deadline-bounded, and optionally journaled for crash-tolerant sweep
    /// resume.
    pub fn supervised(self) -> SupervisedRunner {
        SupervisedRunner {
            runner: self,
            deadline: None,
            checkpoint_every: 1 << 12,
            max_attempts: 3,
            journal: None,
        }
    }
}

/// A [`TrialRunner`] with a supervision layer: per-trial `catch_unwind`
/// isolation (a panicking trial settles as
/// [`TrialVerdict::Poisoned`] instead of aborting the sweep), an optional
/// per-trial wall-clock [`deadline`](Self::deadline) with bounded
/// retry-from-checkpoint, and an optional JSONL results
/// [`journal`](Self::journal) that makes the sweep itself resumable: a
/// killed sweep re-run against the same journal skips every seed that
/// already settled.
///
/// Supervision never changes *what* a trial computes: completed verdicts
/// are bit-identical to the unsupervised [`TrialRunner::run`] results of
/// the same seeds (the deadline hook observes the engine without drawing
/// from its RNG, and checkpoint resume is exact).
#[derive(Debug, Clone)]
pub struct SupervisedRunner {
    runner: TrialRunner,
    deadline: Option<Duration>,
    checkpoint_every: u64,
    max_attempts: u32,
    journal: Option<SweepJournal>,
}

impl SupervisedRunner {
    /// Bounds each trial's wall-clock time. A trial that overruns is paused
    /// at its next checkpoint cadence and retried from that in-memory
    /// checkpoint with a fresh clock (progress is never lost — the retry
    /// continues bit-exactly where the deadline fired), up to
    /// [`max_attempts`](Self::max_attempts) total attempts, after which the
    /// seed settles as [`TrialVerdict::DeadlineExceeded`].
    ///
    /// Deadlines require checkpoint support and therefore apply on the
    /// [`Backend::Count`] backend only; on the indexed backend the deadline
    /// is ignored (trials run unbounded, as unsupervised).
    pub fn deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the deadline-check cadence in state-*changing* interactions
    /// (default `4096`, clamped to at least 1): the engine offers a pause
    /// point to the deadline clock every this many changes. Smaller values
    /// bound overrun tighter; larger values cost less per change.
    pub fn checkpoint_every(mut self, changes: u64) -> Self {
        self.checkpoint_every = changes.max(1);
        self
    }

    /// Sets the total attempt budget per trial under a
    /// [`deadline`](Self::deadline) (default 3, clamped to at least 1).
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Journals every settled verdict to the JSONL file at `path` and, on a
    /// later run against the same path, skips seeds the journal already
    /// settles (see [`SweepJournal::settled_for`] for what "settled"
    /// means). Journal I/O failures degrade to an unjournaled sweep with a
    /// stderr report — they never fail trials.
    pub fn journal(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.journal = Some(SweepJournal::new(path));
        self
    }

    /// The wrapped runner's configuration.
    pub fn runner(&self) -> &TrialRunner {
        &self.runner
    }

    /// Runs one supervised trial per seed and returns verdicts in seed
    /// order. Trials run exactly as [`TrialRunner::run`] would (same
    /// `(sweep_seed, seed)` streams, same backend), so every
    /// [`Completed`](TrialVerdict::Completed) verdict is bit-identical to
    /// the unsupervised result of that seed.
    pub fn run<P>(&self, protocol: &P, inputs: &[P::Input], expected: Color) -> Vec<TrialVerdict>
    where
        P: Protocol<Output = Color> + Sync,
        P::Input: Sync,
        P::State: Send + Sync,
    {
        let backend = self.runner.backend;
        let max_steps = self.runner.max_steps;
        let sweep = self.runner.sweep_seed;
        let deadline = self.deadline.filter(|_| backend == Backend::Count);
        self.supervise(|seed| {
            let attempt = catch_unwind(AssertUnwindSafe(|| match deadline {
                Some(deadline) => run_count_trial_supervised(
                    protocol,
                    inputs,
                    sweep,
                    seed,
                    expected,
                    max_steps,
                    deadline,
                    self.checkpoint_every,
                    self.max_attempts,
                ),
                None => {
                    match backend.trial_stream(protocol, inputs, sweep, seed, expected, max_steps) {
                        Ok(result) => TrialVerdict::Completed(result),
                        Err(e) => TrialVerdict::Poisoned {
                            message: format!("framework error: {e}"),
                        },
                    }
                }
            }));
            attempt.unwrap_or_else(|payload| TrialVerdict::Poisoned {
                message: panic_message(payload.as_ref()),
            })
        })
    }

    /// Fans `f(seed)` out like [`TrialRunner::run_with`], but panic-isolated
    /// and journaled: each call settles as `Completed(f(seed))` or, when `f`
    /// panics, as a [`Poisoned`](TrialVerdict::Poisoned) verdict carrying
    /// the panic message — the escape hatch for custom per-seed work that
    /// still wants supervision (and how the panic-isolation tests inject
    /// deliberate faults).
    pub fn run_with<F>(&self, f: F) -> Vec<TrialVerdict>
    where
        F: Fn(u64) -> TrialResult + Sync,
    {
        self.supervise(|seed| match catch_unwind(AssertUnwindSafe(|| f(seed))) {
            Ok(result) => TrialVerdict::Completed(result),
            Err(payload) => TrialVerdict::Poisoned {
                message: panic_message(payload.as_ref()),
            },
        })
    }

    /// The shared sweep skeleton: load settled seeds from the journal, fan
    /// the rest out, append fresh verdicts as they settle, and merge back
    /// into seed order (journaled verdicts win — they are what this sweep
    /// skipped).
    fn supervise<F>(&self, verdict_of: F) -> Vec<TrialVerdict>
    where
        F: Fn(u64) -> TrialVerdict + Sync,
    {
        let sweep = self.runner.sweep_seed;
        let settled: BTreeMap<u64, TrialVerdict> = match &self.journal {
            Some(journal) => journal.settled_for(sweep).unwrap_or_else(|e| {
                eprintln!(
                    "results journal: ignoring unreadable {}: {e}",
                    journal.path().display()
                );
                BTreeMap::new()
            }),
            None => BTreeMap::new(),
        };
        let todo: Vec<u64> = self
            .runner
            .seeds
            .iter()
            .copied()
            .filter(|seed| !settled.contains_key(seed))
            .collect();
        let appender = self.journal.as_ref().and_then(|journal| {
            journal
                .appender()
                .map_err(|e| {
                    eprintln!(
                        "results journal: cannot append to {}: {e}; sweep runs unjournaled",
                        journal.path().display()
                    );
                })
                .ok()
        });
        let fresh: BTreeMap<u64, TrialVerdict> = run_seeded(&todo, self.runner.threads, |seed| {
            let verdict = verdict_of(seed);
            if let Some(appender) = &appender {
                let entry = JournalEntry {
                    sweep_seed: sweep,
                    trial_seed: seed,
                    verdict: verdict.clone(),
                };
                if let Err(e) = appender.append(&entry) {
                    eprintln!("results journal: dropped entry for seed {seed}: {e}");
                }
            }
            (seed, verdict)
        })
        .into_iter()
        .collect();
        self.runner
            .seeds
            .iter()
            .map(|seed| {
                settled
                    .get(seed)
                    .or_else(|| fresh.get(seed))
                    .cloned()
                    .expect("every seed is journaled or freshly run")
            })
            .collect()
    }
}

/// Renders a caught panic payload as text (the two shapes `panic!` actually
/// produces, with an opaque fallback).
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Runs a protocol whose output is a [`Color`] to silence under the given
/// indexed scheduler and compares the consensus with `expected`. The RNG is
/// the counter-based trial stream `(0, seed)`.
///
/// A run that exhausts `max_steps` without silence is reported with
/// `stabilized == false, correct == false` rather than as an error — for
/// baseline protocols, failing to stabilize is a *finding*.
///
/// # Errors
///
/// Propagates non-budget framework errors (scheduler misbehaviour).
pub fn run_trial<P, Sch>(
    protocol: &P,
    inputs: &[P::Input],
    scheduler: Sch,
    seed: u64,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    Sch: Scheduler<P::State>,
{
    run_trial_rng(
        protocol,
        inputs,
        scheduler,
        trial_rng(0, seed),
        expected,
        max_steps,
    )
}

/// [`run_trial`] with an explicitly constructed generator (e.g. a
/// [`trial_rng`] stream with a non-zero sweep seed).
///
/// # Errors
///
/// Propagates non-budget framework errors (scheduler misbehaviour).
pub fn run_trial_rng<P, Sch, R>(
    protocol: &P,
    inputs: &[P::Input],
    scheduler: Sch,
    rng: R,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    Sch: Scheduler<P::State>,
    R: RngCore,
{
    let population = Population::from_inputs(protocol, inputs);
    let check_interval = (population.len() as u64).max(16);
    let mut sim = Simulation::with_rng(protocol, population, scheduler, rng);
    match sim.run_until_silent(max_steps, check_interval) {
        Ok(report) => Ok(TrialResult {
            steps_to_silence: report.steps_to_silence,
            steps_to_consensus: report.steps_to_consensus,
            state_changes: report.state_changes,
            stabilized: true,
            correct: report.consensus == Some(expected),
        }),
        Err(FrameworkError::MaxStepsExceeded { .. }) => Ok(TrialResult {
            steps_to_silence: sim.stats().last_change_step,
            steps_to_consensus: max_steps,
            state_changes: sim.stats().state_changes,
            stabilized: false,
            correct: false,
        }),
        Err(e) => Err(e),
    }
}

/// Like [`run_trial`] but on the batched count engine (uniform-random
/// scheduling only) — the fast path for large populations. The RNG is the
/// counter-based trial stream `(0, seed)`.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_count_trial<P>(
    protocol: &P,
    inputs: &[P::Input],
    seed: u64,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
{
    run_count_trial_rng(protocol, inputs, trial_rng(0, seed), expected, max_steps)
}

/// [`run_count_trial`] with an explicitly constructed generator.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_count_trial_rng<P, R>(
    protocol: &P,
    inputs: &[P::Input],
    rng: R,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    R: RngCore,
{
    let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
        protocol,
        config,
        UniformCountScheduler::new(),
        rng,
    );
    count_trial_outcome(&mut engine, expected, max_steps)
}

/// Like [`run_count_trial`], but warm-started from `table`, used as a
/// lookup oracle: activity and outcomes the table already knows replace
/// protocol calls, while slot numbering stays canonical — the result is
/// **bit-identical** to the cold [`run_count_trial`] of the same seed,
/// whatever the table contains. The trial's own discoveries are exported
/// back into the table afterwards (even on budget exhaustion: partial
/// structure is still valid structure).
///
/// Warm trials run on the [`CompactCountEngine`], whose compressed rows
/// keep the per-trial adjacency footprint more than an order of magnitude
/// under the flat layout. Sampling is representation-independent, so this
/// changes no trajectory.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_count_trial_warm<P>(
    protocol: &P,
    inputs: &[P::Input],
    seed: u64,
    expected: Color,
    max_steps: u64,
    table: &TransitionTable<P>,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
{
    run_count_trial_warm_rng(
        protocol,
        inputs,
        trial_rng(0, seed),
        expected,
        max_steps,
        table,
    )
}

/// [`run_count_trial_warm`] with an explicitly constructed generator.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_count_trial_warm_rng<P, R>(
    protocol: &P,
    inputs: &[P::Input],
    rng: R,
    expected: Color,
    max_steps: u64,
    table: &TransitionTable<P>,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    R: RngCore,
{
    let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut engine = CompactCountEngine::<_, _, R>::with_table_rng(
        protocol,
        config,
        UniformCountScheduler::new(),
        rng,
        table,
    );
    let result = count_trial_outcome(&mut engine, expected, max_steps);
    engine.export_to(table);
    result
}

/// [`run_count_trial_warm_rng`] against a pre-captured epoch snapshot: the
/// trial warm-starts from `snapshot` (no per-trial capture) and still
/// publishes its discoveries to `table`. [`TrialRunner::run_with_table`]
/// captures one snapshot per sweep and funnels every fanned-out trial
/// through here.
///
/// # Errors
///
/// Propagates non-budget framework errors.
pub fn run_count_trial_warm_snap_rng<P, R>(
    protocol: &P,
    inputs: &[P::Input],
    rng: R,
    expected: Color,
    max_steps: u64,
    snapshot: &Arc<TableSnapshot<P::State>>,
    table: &TransitionTable<P>,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    R: RngCore,
{
    let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut engine = CompactCountEngine::<_, _, R>::with_snapshot_rng(
        protocol,
        config,
        UniformCountScheduler::new(),
        rng,
        Arc::clone(snapshot),
    );
    let result = count_trial_outcome(&mut engine, expected, max_steps);
    engine.export_to(table);
    result
}

/// Shared measurement tail of the count-backend trial runners.
fn count_trial_outcome<P, A, R>(
    engine: &mut CountEngine<'_, P, UniformCountScheduler, A, R>,
    expected: Color,
    max_steps: u64,
) -> Result<TrialResult, FrameworkError>
where
    P: Protocol<Output = Color>,
    A: Activity,
    R: RngCore,
{
    match engine.run_until_silent(max_steps) {
        Ok(report) => Ok(TrialResult {
            steps_to_silence: report.steps_to_silence,
            steps_to_consensus: report.steps_to_consensus,
            state_changes: report.state_changes,
            stabilized: true,
            correct: report.consensus == Some(expected),
        }),
        Err(FrameworkError::MaxStepsExceeded { .. }) => Ok(TrialResult {
            steps_to_silence: engine.stats().last_change_step,
            steps_to_consensus: max_steps,
            state_changes: engine.stats().state_changes,
            stabilized: false,
            correct: false,
        }),
        Err(e) => Err(e),
    }
}

/// A deadline-bounded count-backend trial: runs the same cold sparse engine
/// as [`Backend::Count`]'s [`trial_stream`](Backend::trial_stream) (so a
/// completed verdict is bit-identical to the unsupervised trial of the same
/// `(sweep_seed, seed)`), but offers a pause point to a wall-clock deadline
/// every `checkpoint_every` state changes. When the deadline fires, the
/// engine checkpoints in memory and the trial retries *from that
/// checkpoint* with a fresh clock — progress is never discarded — up to
/// `max_attempts` total attempts before settling as
/// [`TrialVerdict::DeadlineExceeded`].
///
/// The deadline hook only observes the engine (no RNG draws), and
/// checkpoint resume is exact, so a trial that pauses and resumes any
/// number of times still produces the uninterrupted trial's numbers.
#[allow(clippy::too_many_arguments)]
pub fn run_count_trial_supervised<P>(
    protocol: &P,
    inputs: &[P::Input],
    sweep_seed: u64,
    seed: u64,
    expected: Color,
    max_steps: u64,
    deadline: Duration,
    checkpoint_every: u64,
    max_attempts: u32,
) -> TrialVerdict
where
    P: Protocol<Output = Color>,
{
    let max_attempts = max_attempts.max(1);
    let every = checkpoint_every.max(1);
    let config: CountConfig<P::State> = inputs.iter().map(|i| protocol.input(i)).collect();
    let mut engine = CountEngine::<_, _, SparseActivity, _>::with_rng(
        protocol,
        config,
        UniformCountScheduler::new(),
        trial_rng(sweep_seed, seed),
    );
    let mut attempts = 1u32;
    loop {
        let start = Instant::now();
        let mut paused = None;
        let outcome = engine.run_until_silent_checkpointed(max_steps, every, |e| {
            if start.elapsed() >= deadline {
                paused = Some(e.checkpoint());
                ControlFlow::Break(())
            } else {
                ControlFlow::Continue(())
            }
        });
        match outcome {
            Ok(report) => {
                return TrialVerdict::Completed(TrialResult {
                    steps_to_silence: report.steps_to_silence,
                    steps_to_consensus: report.steps_to_consensus,
                    state_changes: report.state_changes,
                    stabilized: true,
                    correct: report.consensus == Some(expected),
                });
            }
            Err(FrameworkError::MaxStepsExceeded { .. }) => {
                return TrialVerdict::Completed(TrialResult {
                    steps_to_silence: engine.stats().last_change_step,
                    steps_to_consensus: max_steps,
                    state_changes: engine.stats().state_changes,
                    stabilized: false,
                    correct: false,
                });
            }
            Err(FrameworkError::Interrupted { .. }) => {
                if attempts >= max_attempts {
                    return TrialVerdict::DeadlineExceeded { attempts };
                }
                attempts += 1;
                let checkpoint = paused
                    .take()
                    .expect("the deadline hook always checkpoints before pausing");
                engine = CountEngine::resume(protocol, UniformCountScheduler::new(), &checkpoint)
                    .expect("an in-memory checkpoint of a live engine is always resumable");
            }
            Err(e) => {
                return TrialVerdict::Poisoned {
                    message: format!("framework error: {e}"),
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use circles_core::CirclesProtocol;

    #[test]
    fn circles_trial_is_correct() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = [0, 0, 0, 1, 2].map(Color).to_vec();
        let result = run_trial(
            &protocol,
            &inputs,
            UniformPairScheduler::new(),
            1,
            Color(0),
            1_000_000,
        )
        .unwrap();
        assert!(result.stabilized);
        assert!(result.correct);
        assert!(result.steps_to_consensus <= result.steps_to_silence + 1);
    }

    #[test]
    fn budget_exhaustion_is_a_finding_not_an_error() {
        let protocol = CirclesProtocol::new(4).unwrap();
        let inputs: Vec<Color> = (0..64).map(|i| Color((i % 3) as u16)).collect();
        // Color 0 wins 22/21/21; budget of 3 steps cannot stabilize.
        let result = run_trial(
            &protocol,
            &inputs,
            UniformPairScheduler::new(),
            2,
            Color(0),
            3,
        )
        .unwrap();
        assert!(!result.stabilized);
        assert!(!result.correct);
    }

    #[test]
    fn count_trial_matches_expectation() {
        let protocol = CirclesProtocol::new(2).unwrap();
        let inputs: Vec<Color> = (0..50).map(|i| Color(u16::from(i < 30))).collect();
        let result = run_count_trial(&protocol, &inputs, 3, Color(1), 10_000_000).unwrap();
        assert!(result.stabilized);
        assert!(result.correct);
    }

    #[test]
    fn count_trial_budget_exhaustion_records_partial_stats() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color((i % 3) as u16)).collect();
        let result = run_count_trial(&protocol, &inputs, 2, Color(0), 3).unwrap();
        assert!(!result.stabilized);
        assert!(!result.correct);
        assert_eq!(result.steps_to_consensus, 3);
    }

    #[test]
    fn run_to_silence_exposes_the_terminal_configuration_on_both_backends() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..30).map(|i| Color(u16::from(i >= 20))).collect();
        for backend in Backend::ALL {
            let outcome = backend
                .run_to_silence(&protocol, &inputs, 5, 100_000_000)
                .unwrap();
            assert!(outcome.stabilized, "{} did not stabilize", backend.name());
            assert_eq!(outcome.report.consensus, Some(Color(0)));
            assert_eq!(outcome.config.n(), 30, "agents conserved");
            assert!(
                outcome.report.steps_to_silence <= outcome.report.steps,
                "silence cannot postdate the last step"
            );
        }
    }

    #[test]
    fn run_to_silence_budget_exhaustion_is_a_finding() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color((i % 3) as u16)).collect();
        for backend in Backend::ALL {
            let outcome = backend.run_to_silence(&protocol, &inputs, 2, 3).unwrap();
            assert!(!outcome.stabilized, "{}", backend.name());
            assert_eq!(outcome.config.n(), 60);
        }
    }

    #[test]
    fn warm_runner_matches_cold_runner_results() {
        // Canonical slot order makes every warm trial bit-identical to the
        // cold trial of the same seed, whatever the shared table contains —
        // not merely drawn from the same distribution.
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color(u16::from(i >= 40))).collect();
        let runner = TrialRunner::new(Backend::Count).seeds(6).threads(3);
        let cold = runner.run(&protocol, &inputs, Color(0));
        let table = TransitionTable::new();
        let warm = runner.run_with_table(&protocol, &inputs, Color(0), &table);
        assert_eq!(warm, cold, "warm sweep must replay the cold sweep");
        assert!(warm.iter().all(|r| r.stabilized && r.correct));
        assert!(!table.is_empty(), "sweep populated the shared table");
        assert!(table.active_pairs() > 0);
        // A second sweep over the warm table skips the serial first trial
        // and discovers nothing new.
        let before = table.len();
        let again = runner.run_with_table(&protocol, &inputs, Color(0), &table);
        assert_eq!(again, cold, "an already-warm table changes nothing");
        assert_eq!(table.len(), before, "warm sweep discovers nothing new");
        // The builder flag routes through the same path.
        let flagged = runner.clone().warm(true).run(&protocol, &inputs, Color(0));
        assert_eq!(flagged, cold);
    }

    #[test]
    fn warm_trial_replays_its_own_table_bit_identically() {
        // A warm trial re-run against the table a previous trial exported
        // must reproduce that trial's measurement exactly — the canonical
        // slot order contract, for any table contents.
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..50).map(|i| Color((i % 3) as u16)).collect();
        for seed in 0..5 {
            let table = TransitionTable::new();
            let cold =
                run_count_trial_warm(&protocol, &inputs, seed, Color(0), u64::MAX / 2, &table)
                    .unwrap();
            let warm =
                run_count_trial_warm(&protocol, &inputs, seed, Color(0), u64::MAX / 2, &table)
                    .unwrap();
            assert_eq!(warm, cold, "seed {seed}");
        }
    }

    #[test]
    fn backend_trial_dispatches_both_engines() {
        let protocol = CirclesProtocol::new(2).unwrap();
        let inputs: Vec<Color> = (0..40).map(|i| Color(u16::from(i < 10))).collect();
        for backend in Backend::ALL {
            let result = backend
                .trial(&protocol, &inputs, 4, Color(0), 100_000_000)
                .unwrap();
            assert!(result.stabilized && result.correct, "{}", backend.name());
        }
    }

    #[test]
    fn run_with_fans_out_in_seed_order() {
        let runner = TrialRunner::new(Backend::Count)
            .seed_list(vec![3, 1, 4])
            .threads(2);
        let out = runner.run_with(|seed| seed * 10);
        assert_eq!(out, vec![30, 10, 40]);
    }

    #[test]
    fn poisoned_trial_is_isolated_and_the_rest_match_a_clean_sweep() {
        // The robustness acceptance bar: a sweep with one deliberately
        // panicking trial completes with exactly one poisoned verdict, and
        // every other trial is bit-identical to the clean sweep.
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color(u16::from(i >= 40))).collect();
        let runner = TrialRunner::new(Backend::Count).seeds(6).threads(3);
        let clean = runner.run(&protocol, &inputs, Color(0));
        let verdicts = runner.clone().supervised().run_with(|seed| {
            if seed == 3 {
                panic!("injected fault in seed 3");
            }
            Backend::Count
                .trial_stream(&protocol, &inputs, 0, seed, Color(0), u64::MAX / 2)
                .expect("trial failed")
        });
        assert_eq!(verdicts.len(), 6);
        for (i, verdict) in verdicts.iter().enumerate() {
            if i == 3 {
                match verdict {
                    TrialVerdict::Poisoned { message } => {
                        assert!(message.contains("injected fault"), "{message}");
                    }
                    other => panic!("seed 3 must poison, got {other:?}"),
                }
            } else {
                assert_eq!(
                    verdict.result(),
                    Some(&clean[i]),
                    "seed {i} must match the clean sweep bit for bit"
                );
            }
        }
    }

    #[test]
    fn supervised_run_matches_unsupervised_with_and_without_a_deadline() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color((i % 3) as u16)).collect();
        let runner = TrialRunner::new(Backend::Count).seeds(5).threads(2);
        let clean = runner.run(&protocol, &inputs, Color(0));
        // No deadline: the plain trial_stream path.
        let plain = runner
            .clone()
            .supervised()
            .run(&protocol, &inputs, Color(0));
        // Generous deadline: the checkpointed-driver path, never firing.
        let bounded = runner
            .clone()
            .supervised()
            .deadline(Duration::from_secs(3600))
            .checkpoint_every(16)
            .run(&protocol, &inputs, Color(0));
        for (label, verdicts) in [("plain", &plain), ("deadline", &bounded)] {
            for (i, verdict) in verdicts.iter().enumerate() {
                assert_eq!(verdict.result(), Some(&clean[i]), "{label} seed {i}");
            }
        }
    }

    #[test]
    fn deadline_retry_resumes_from_checkpoint_and_still_completes_exactly() {
        // A zero deadline fires at every cadence point, so the trial only
        // finishes through repeated resume-from-checkpoint — and must still
        // produce the uninterrupted trial's exact numbers.
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..50).map(|i| Color((i % 3) as u16)).collect();
        let clean = Backend::Count
            .trial_stream(&protocol, &inputs, 0, 1, Color(0), u64::MAX / 2)
            .unwrap();
        let verdict = run_count_trial_supervised(
            &protocol,
            &inputs,
            0,
            1,
            Color(0),
            u64::MAX / 2,
            Duration::ZERO,
            40,
            100_000,
        );
        assert_eq!(verdict.result(), Some(&clean));
    }

    #[test]
    fn deadline_give_up_is_a_typed_verdict_with_the_attempt_count() {
        let protocol = CirclesProtocol::new(3).unwrap();
        let inputs: Vec<Color> = (0..60).map(|i| Color((i % 3) as u16)).collect();
        let verdict = run_count_trial_supervised(
            &protocol,
            &inputs,
            0,
            2,
            Color(0),
            u64::MAX / 2,
            Duration::ZERO,
            1,
            2,
        );
        assert_eq!(verdict, TrialVerdict::DeadlineExceeded { attempts: 2 });
    }

    #[test]
    fn journaled_sweep_resumes_without_recomputing_settled_seeds() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let path =
            std::env::temp_dir().join(format!("pp-supervised-resume-{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let protocol = CirclesProtocol::new(2).unwrap();
        let inputs: Vec<Color> = (0..40).map(|i| Color(u16::from(i < 10))).collect();
        let supervised = TrialRunner::new(Backend::Count)
            .seeds(5)
            .threads(2)
            .supervised()
            .journal(&path);
        let computed = AtomicUsize::new(0);
        let trial = |seed: u64| {
            computed.fetch_add(1, Ordering::Relaxed);
            Backend::Count
                .trial_stream(&protocol, &inputs, 0, seed, Color(0), u64::MAX / 2)
                .expect("trial failed")
        };
        let first = supervised.run_with(trial);
        assert_eq!(computed.load(Ordering::Relaxed), 5);
        // A "crashed and restarted" sweep: same journal, same seeds — every
        // settled seed is skipped, and the merged verdicts are identical.
        let second = supervised.run_with(trial);
        assert_eq!(
            computed.load(Ordering::Relaxed),
            5,
            "journaled seeds must not recompute"
        );
        assert_eq!(second, first);
        // Widening the sweep only computes the new seeds.
        let widened = TrialRunner::new(Backend::Count)
            .seeds(7)
            .threads(2)
            .supervised()
            .journal(&path)
            .run_with(trial);
        assert_eq!(computed.load(Ordering::Relaxed), 7);
        assert_eq!(&widened[..5], &first[..]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn runner_backends_agree_on_an_easy_race() {
        let protocol = CirclesProtocol::new(2).unwrap();
        let inputs: Vec<Color> = (0..40).map(|i| Color(u16::from(i >= 30))).collect();
        for backend in Backend::ALL {
            let results =
                TrialRunner::new(backend)
                    .seeds(6)
                    .threads(2)
                    .run(&protocol, &inputs, Color(0));
            assert_eq!(results.len(), 6);
            assert!(
                results.iter().all(|r| r.stabilized && r.correct),
                "{} backend failed an easy 75/25 race",
                backend.name()
            );
        }
    }
}
