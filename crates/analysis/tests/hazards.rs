//! Cross-model and cross-thread-count guarantees of the hazard layer.
//!
//! * **Small-n equivalence** — the indexed fault model (exact agent resets
//!   via `run_with_faults`) and the count-level hazard model (anonymous
//!   unit-of-mass crashes) share their crash schedules (identical `at_step`
//!   lists from the hazard stream) and must agree on stabilized/correct
//!   *rates* over a seed sweep: the crash victim is a uniformly random
//!   agent under both models, so the two samplings differ only in how the
//!   victim is addressed.
//! * **Thread-count determinism** — a fixed-seed hazard sweep returns
//!   byte-identical `HazardReport`s at 1, 2 and 8 worker threads, because
//!   every draw comes from counter-based Philox streams keyed by trial
//!   identity, never by scheduling order.

use circles_core::Color;
use pp_analysis::experiments::e11_faults::{count_crash_trial, indexed_crash_trial};
use pp_analysis::runner::seed_range;
use pp_analysis::trial::{Backend, TrialRunner};
use pp_analysis::workloads::{margin_workload, shuffled};

fn rate(hits: usize, total: usize) -> f64 {
    hits as f64 / total as f64
}

#[test]
fn indexed_and_count_models_agree_on_matched_crash_schedules() {
    let k = 3u16;
    let inputs = shuffled(margin_workload(24, k, 4), 3);
    let mut counts: std::collections::BTreeMap<Color, u64> = std::collections::BTreeMap::new();
    for &c in &inputs {
        *counts.entry(c).or_insert(0) += 1;
    }
    let counts: Vec<(Color, u64)> = counts.into_iter().collect();
    let seeds = 32usize;
    let max_steps = 50_000_000;
    for faults in [0usize, 2, 6] {
        let mut indexed = (0, 0); // (stabilized, correct)
        let mut hazard = (0, 0);
        for seed in 0..seeds as u64 {
            let i = indexed_crash_trial(&inputs, k, faults, 0, seed, max_steps);
            indexed.0 += usize::from(i.stabilized);
            indexed.1 += usize::from(i.correct);
            let h = count_crash_trial(&counts, k, faults, 0, seed, max_steps);
            hazard.0 += usize::from(h.stabilized);
            hazard.1 += usize::from(h.correct);
        }
        // Crashes never prevent stabilization (the potential argument does
        // not need conservation) — both models must agree exactly here.
        assert_eq!(
            indexed.0, seeds,
            "indexed model failed to stabilize with {faults} faults"
        );
        assert_eq!(
            hazard.0, seeds,
            "count model failed to stabilize with {faults} faults"
        );
        // Correctness is a rate: the two victim samplings are different
        // draws from the same distribution, so allow sampling noise.
        let diff = (rate(indexed.1, seeds) - rate(hazard.1, seeds)).abs();
        assert!(
            diff <= 0.25,
            "models disagree on correctness with {faults} faults: \
             indexed {}/{seeds}, count {}/{seeds}",
            indexed.1,
            hazard.1,
        );
        if faults == 0 {
            assert_eq!(indexed.1, seeds, "fault-free indexed runs must be correct");
            assert_eq!(hazard.1, seeds, "fault-free count runs must be correct");
        }
    }
}

#[test]
fn hazard_sweeps_are_bit_identical_across_thread_counts() {
    let k = 3u16;
    let counts: Vec<(Color, u64)> = vec![(Color(0), 220), (Color(1), 180), (Color(2), 100)];
    let max_steps = 50_000_000;
    let sweep = |threads: usize| {
        TrialRunner::new(Backend::Count)
            .threads(threads)
            .seed_list(seed_range(12))
            .run_with(|seed| count_crash_trial(&counts, k, 4, 9, seed, max_steps))
    };
    let one = sweep(1);
    let two = sweep(2);
    let eight = sweep(8);
    assert_eq!(one, two, "hazard sweep differs between 1 and 2 threads");
    assert_eq!(one, eight, "hazard sweep differs between 1 and 8 threads");
    assert!(one.iter().all(|r| r.stabilized && r.hazards_applied == 4));
}
