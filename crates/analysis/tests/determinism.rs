//! Sweep-level reproducibility of [`TrialRunner`].
//!
//! Counter-based trial streams (`Philox4x32`, keyed `(sweep_seed, seed)`)
//! plus canonical slot numbering make a sweep's `TrialResult`s a pure
//! function of its parameters: identical at any worker-thread count, under
//! any seed order, warm or cold, whatever a shared table contains. CI
//! additionally diffs two whole `warm_sweep` bench reports byte-for-byte at
//! different thread counts; these tests pin the same contract at test
//! scale.

use circles_core::{CirclesProtocol, Color};
use pp_analysis::trial::{Backend, TrialRunner};
use pp_protocol::TransitionTable;

fn workload() -> (CirclesProtocol, Vec<Color>, Color) {
    let protocol = CirclesProtocol::new(3).unwrap();
    // 18/15/15 in favor of color 0 — decisive enough to stabilize fast.
    let mut inputs: Vec<Color> = (0..45).map(|i| Color((i % 3) as u16)).collect();
    inputs.extend([Color(0), Color(0), Color(0)]);
    (protocol, inputs, Color(0))
}

#[test]
fn trial_runner_reports_are_identical_across_thread_counts() {
    let (protocol, inputs, expected) = workload();
    for backend in Backend::ALL {
        let base = TrialRunner::new(backend)
            .seeds(8)
            .threads(1)
            .run(&protocol, &inputs, expected);
        for threads in [2, 8] {
            let other = TrialRunner::new(backend)
                .seeds(8)
                .threads(threads)
                .run(&protocol, &inputs, expected);
            assert_eq!(other, base, "{} at {threads} threads", backend.name());
        }
    }
}

#[test]
fn trial_runner_reports_are_order_insensitive() {
    let (protocol, inputs, expected) = workload();
    for backend in Backend::ALL {
        let forward = TrialRunner::new(backend)
            .seed_list((0..8).collect())
            .threads(3)
            .run(&protocol, &inputs, expected);
        let mut reversed = TrialRunner::new(backend)
            .seed_list((0..8).rev().collect())
            .threads(3)
            .run(&protocol, &inputs, expected);
        reversed.reverse();
        assert_eq!(
            reversed,
            forward,
            "{}: seed 7 must mean one trajectory wherever it sits in the sweep",
            backend.name()
        );
    }
}

#[test]
fn warm_sweeps_are_identical_across_thread_counts_and_to_cold() {
    let (protocol, inputs, expected) = workload();
    let cold = TrialRunner::new(Backend::Count)
        .seeds(8)
        .threads(1)
        .run(&protocol, &inputs, expected);
    for threads in [1, 2, 8] {
        let table = TransitionTable::new();
        let warm = TrialRunner::new(Backend::Count)
            .seeds(8)
            .threads(threads)
            .run_with_table(&protocol, &inputs, expected, &table);
        assert_eq!(warm, cold, "warm sweep at {threads} threads");
    }
    // A pre-populated table — whose id order came from other seeds —
    // changes nothing either.
    let table = TransitionTable::new();
    TrialRunner::new(Backend::Count)
        .seed_list(vec![101, 7, 55])
        .threads(2)
        .run_with_table(&protocol, &inputs, expected, &table);
    let warm = TrialRunner::new(Backend::Count)
        .seeds(8)
        .threads(4)
        .run_with_table(&protocol, &inputs, expected, &table);
    assert_eq!(warm, cold, "pre-warmed table perturbed the sweep");
}

#[test]
fn sweep_seed_selects_independent_streams() {
    let (protocol, inputs, expected) = workload();
    let sweep_a = TrialRunner::new(Backend::Count)
        .seeds(6)
        .sweep_seed(1)
        .run(&protocol, &inputs, expected);
    let sweep_a_again = TrialRunner::new(Backend::Count)
        .seeds(6)
        .sweep_seed(1)
        .threads(2)
        .run(&protocol, &inputs, expected);
    assert_eq!(sweep_a, sweep_a_again, "sweep seed 1 is reproducible");
    let sweep_b = TrialRunner::new(Backend::Count)
        .seeds(6)
        .sweep_seed(2)
        .run(&protocol, &inputs, expected);
    assert_ne!(
        sweep_a, sweep_b,
        "distinct sweep seeds must draw distinct streams"
    );
}
