//! The on-disk table cache can only save time, never change results:
//! cached sweeps are bit-identical to cold ones across miss, hit and
//! corrupted-store conditions, and a corrupted store is replaced by a
//! valid one instead of being trusted.

use circles_core::CirclesProtocol;
use pp_analysis::table_cache::{CacheStatus, TableCache};
use pp_analysis::trial::{Backend, TrialRunner};
use pp_analysis::workloads::{margin_workload, true_winner};

fn unique_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("pp-cache-it-{tag}-{}", std::process::id()))
}

#[test]
fn cached_sweeps_are_bit_identical_across_miss_hit_and_corruption() {
    let dir = unique_dir("lifecycle");
    let _ = std::fs::remove_dir_all(&dir);
    let protocol = CirclesProtocol::new(4).unwrap();
    let inputs = margin_workload(200, 4, 20);
    let expected = true_winner(&inputs, 4);
    let runner = TrialRunner::new(Backend::Count)
        .seeds(6)
        .threads(2)
        .table_cache_dir(&dir);
    let cold = TrialRunner::new(Backend::Count)
        .seeds(6)
        .threads(2)
        .run(&protocol, &inputs, expected);

    // Miss: no store yet — the sweep discovers cold and persists.
    let cache = TableCache::new(&dir);
    let store_path = cache.path_for(&protocol);
    assert!(!store_path.exists());
    let miss = runner.run_cached(&protocol, &inputs, expected);
    assert_eq!(miss, cold, "cache miss must replay the cold sweep");
    assert!(store_path.exists(), "the sweep persisted its table");

    // Hit: the store loads (status Hit) and the sweep replays identically.
    let (table, status) = cache.load_or_empty(&protocol);
    assert_eq!(status, CacheStatus::Hit);
    assert!(!table.is_empty());
    let hit = runner.run_cached(&protocol, &inputs, expected);
    assert_eq!(hit, cold, "cache hit must replay the cold sweep");

    // Corruption: flip a byte mid-file. The load degrades to Invalid, the
    // sweep still replays cold results, and the bad store is replaced.
    let mut bytes = std::fs::read(&store_path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&store_path, &bytes).unwrap();
    let (table, status) = cache.load_or_empty(&protocol);
    assert_eq!(status, CacheStatus::Invalid, "a flipped byte must not load");
    assert!(table.is_empty(), "invalid stores yield an empty table");
    let after_corruption = runner.run_cached(&protocol, &inputs, expected);
    assert_eq!(
        after_corruption, cold,
        "a corrupt cache must fall back to cold discovery, not change results"
    );
    let (_, status) = cache.load_or_empty(&protocol);
    assert_eq!(
        status,
        CacheStatus::Hit,
        "the rediscovered table must have replaced the corrupt store"
    );

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn different_k_use_disjoint_store_files() {
    let dir = unique_dir("keys");
    let _ = std::fs::remove_dir_all(&dir);
    let cache = TableCache::new(&dir);
    let k3 = CirclesProtocol::new(3).unwrap();
    let k4 = CirclesProtocol::new(4).unwrap();

    for (k, protocol) in [(3u16, &k3), (4, &k4)] {
        let n = 120;
        let inputs = margin_workload(n, k, n / 10);
        let expected = true_winner(&inputs, k);
        TrialRunner::new(Backend::Count)
            .seeds(3)
            .threads(2)
            .table_cache_dir(&dir)
            .run_cached(protocol, &inputs, expected);
    }
    assert!(cache.path_for(&k3).exists());
    assert!(cache.path_for(&k4).exists());
    assert_ne!(cache.path_for(&k3), cache.path_for(&k4));

    // Loading k3's file as k4 is an identity error, not a wrong table.
    let err = pp_protocol::transition_store::load(&k4, &cache.path_for(&k3)).unwrap_err();
    assert!(matches!(
        err,
        pp_protocol::StoreError::IdentityMismatch { .. }
    ));

    let _ = std::fs::remove_dir_all(&dir);
}
