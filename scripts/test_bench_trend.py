#!/usr/bin/env python3
"""Self-test for bench_trend.py's exit-code contract.

Runs as a plain script (``python3 scripts/test_bench_trend.py``, no pytest
required) but each case is a ``test_*`` function, so a pytest runner picks
them up individually too. CI invokes this right before the real trend diff:
a wrong exit code here would silently turn bench-step failures into
"regressions" (or worse, into passes).
"""

import json
import os
import sys
import tempfile

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import bench_trend  # noqa: E402


ROWS = [
    {"bench": "warm_sweep/sweep_ns", "median_ns": 100.0, "quick": True},
    {"bench": "warm_sweep/discovery_call_ratio_x", "median_ns": 16.0, "quick": True},
]


def _run(prev, cur, threshold=None):
    """Materializes artifacts and returns bench_trend.main's exit code.

    ``prev``/``cur`` may be a list (JSON-encoded), a raw string (written
    verbatim — empty or invalid JSON), or None (file never created).
    """
    with tempfile.TemporaryDirectory() as tmp:
        paths = []
        for name, content in (("prev.json", prev), ("cur.json", cur)):
            path = os.path.join(tmp, name)
            paths.append(path)
            if content is None:
                continue
            with open(path, "w", encoding="utf-8") as f:
                f.write(content if isinstance(content, str) else json.dumps(content))
        argv = ["bench_trend.py", *paths]
        if threshold is not None:
            argv.append(str(threshold))
        return bench_trend.main(argv)


def test_matching_artifacts_pass():
    assert _run(ROWS, ROWS) == 0


def test_missing_previous_starts_baseline():
    assert _run(None, ROWS) == 0


def test_empty_previous_starts_baseline():
    assert _run("", ROWS) == 0


def test_invalid_previous_starts_baseline():
    assert _run("{not json", ROWS) == 0


def test_regression_fails():
    cur = [{"bench": "warm_sweep/sweep_ns", "median_ns": 300.0, "quick": True}]
    assert _run(ROWS, cur) == 1


def test_within_threshold_passes():
    cur = [{"bench": "warm_sweep/sweep_ns", "median_ns": 150.0, "quick": True}]
    assert _run(ROWS, cur) == 0


def test_missing_current_is_usage_error():
    assert _run(ROWS, None) == 2


def test_empty_current_is_usage_error():
    assert _run(ROWS, "") == 2


def test_invalid_current_is_usage_error():
    assert _run(ROWS, "[{]") == 2


def test_non_array_current_is_usage_error():
    assert _run(ROWS, {"bench": "x"}) == 2


def test_ratio_labels_are_skipped():
    # A collapsed ratio row must not trip the gate: _x labels are asserted
    # in-bench and ignored here.
    cur = [
        {"bench": "warm_sweep/sweep_ns", "median_ns": 100.0, "quick": True},
        {"bench": "warm_sweep/discovery_call_ratio_x", "median_ns": 1.0, "quick": True},
    ]
    assert _run(ROWS, cur) == 0


def test_factor_labels_are_skipped():
    # Structural-count rows (states per orbit representative, etc.) have no
    # time axis; a change is a protocol change, asserted in-bench, and must
    # not read as a wall-clock regression.
    prev = ROWS + [{"bench": "discovery/orbit_factor", "median_ns": 30.0, "quick": True}]
    cur = ROWS + [{"bench": "discovery/orbit_factor", "median_ns": 1.0, "quick": True}]
    assert _run(prev, cur) == 0


def test_missing_args_is_usage_error():
    assert bench_trend.main(["bench_trend.py"]) == 2


def main():
    tests = sorted(
        (name, fn)
        for name, fn in globals().items()
        if name.startswith("test_") and callable(fn)
    )
    failures = 0
    for name, fn in tests:
        try:
            fn()
            print(f"ok   {name}")
        except AssertionError as e:
            failures += 1
            print(f"FAIL {name}: {e}")
    print(f"{len(tests) - failures}/{len(tests)} bench_trend self-tests passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
