#!/usr/bin/env python3
"""Trend-diff two BENCH_ci.json artifacts; fail on median regressions.

Usage: bench_trend.py PREVIOUS.json CURRENT.json [THRESHOLD]

Labels are matched on the ``bench`` field under the same ``quick`` flag and
compared by ``median_ns``; a current median more than THRESHOLD (default 2.0)
times the previous one fails the check. Quick-mode medians come from at most
3 samples, so the threshold is deliberately coarse — this is a drift alarm,
not a microbenchmark.

Rows whose label ends in ``_x`` are ratios (e.g. ``implied_speedup_x``) where
*higher* is better; they are asserted in-bench and skipped here. A missing or
unreadable PREVIOUS file (first run, expired artifact) passes with a notice —
the trend starts at the next commit.
"""

import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def key_rows(rows):
    table = {}
    for row in rows:
        label = row.get("bench")
        median = row.get("median_ns")
        if label is None or median is None or label.endswith("_x"):
            continue
        table[(label, bool(row.get("quick")))] = float(median)
    return table


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    prev_path, cur_path = argv[1], argv[2]
    threshold = float(argv[3]) if len(argv) > 3 else 2.0

    try:
        prev = key_rows(load(prev_path))
    except (OSError, ValueError) as e:
        print(f"bench-trend: no usable previous artifact ({e}); baseline starts now")
        return 0
    cur = key_rows(load(cur_path))

    regressions = []
    compared = 0
    for key, new_median in sorted(cur.items()):
        old_median = prev.get(key)
        if old_median is None or old_median <= 0.0:
            continue
        compared += 1
        ratio = new_median / old_median
        label, quick = key
        marker = " quick" if quick else ""
        line = f"  {label}{marker}: {old_median:.0f} -> {new_median:.0f} ns ({ratio:.2f}x)"
        if ratio > threshold:
            regressions.append(line)
        else:
            print(f"bench-trend ok{line}")

    if regressions:
        print(f"bench-trend: {len(regressions)} label(s) regressed past {threshold}x:")
        print("\n".join(regressions))
        return 1
    print(f"bench-trend: {compared} matching label(s), none past {threshold}x")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
