#!/usr/bin/env python3
"""Trend-diff two BENCH_ci.json artifacts; fail on median regressions.

Usage: bench_trend.py PREVIOUS.json CURRENT.json [THRESHOLD]

Labels are matched on the ``bench`` field under the same ``quick`` flag and
compared by ``median_ns``; a current median more than THRESHOLD (default 2.0)
times the previous one fails the check. Quick-mode medians come from at most
3 samples, so the threshold is deliberately coarse — this is a drift alarm,
not a microbenchmark.

Rows whose label ends in ``_x`` are ratios (e.g. ``implied_speedup_x``) where
*higher* is better, and rows ending in ``_factor`` are structural counts
(e.g. ``discovery/orbit_factor``, states per canonical representative) with
no time axis at all; both are asserted in-bench and skipped here. The
``table_store/*`` rows never reach this script at all: the dedicated CI job
writes them to their own ``table_store_bench`` artifact (see
``results/README.md``) because millisecond-scale disk timings would flap a
2x wall-clock gate, and the real invariants (zero protocol calls on load,
``cold_over_load_x >= 10``, bit-identical warm replay) are asserted
in-bench. Labels only
present on one side are never an error: rows absent from the previous
artifact (a freshly added bench group) start their baseline now, rows absent
from the current artifact (a retired group) stop being tracked — both sets
are printed explicitly so additions and removals are visible in the CI log.
A missing or unreadable PREVIOUS file (first run, expired artifact) passes
with a notice — the trend starts at the next commit. A missing, empty or
unparseable CURRENT file is a usage error (exit 2): the bench step that was
supposed to produce it failed, which must not masquerade as a benchmark
regression (exit 1) or as a clean pass.

Exit status: 0 trend ok, 1 regression past THRESHOLD, 2 usage error
(including an unusable CURRENT artifact).
"""

import json
import sys


def load(path):
    with open(path, encoding="utf-8") as f:
        return json.load(f)


def key_rows(rows):
    table = {}
    if not isinstance(rows, list):
        raise ValueError("artifact is not a JSON array of rows")
    for row in rows:
        if not isinstance(row, dict):
            continue
        label = row.get("bench")
        median = row.get("median_ns")
        label = str(label) if label is not None else None
        if (
            label is None
            or median is None
            or label.endswith("_x")
            or label.endswith("_factor")
        ):
            continue
        try:
            table[(str(label), bool(row.get("quick")))] = float(median)
        except (TypeError, ValueError):
            continue
    return table


def fmt_key(key):
    label, quick = key
    return f"{label} [quick]" if quick else label


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    prev_path, cur_path = argv[1], argv[2]
    threshold = float(argv[3]) if len(argv) > 3 else 2.0

    try:
        prev = key_rows(load(prev_path))
    except (OSError, ValueError) as e:
        print(f"bench-trend: no usable previous artifact ({e}); baseline starts now")
        return 0
    # The current artifact is this run's own output: if it is missing or
    # unparseable the producing step broke, and the failure must be
    # attributed there (usage exit 2), not reported as a regression (1) —
    # previously the raw traceback exited 1, indistinguishable from one.
    try:
        cur = key_rows(load(cur_path))
    except (OSError, ValueError) as e:
        print(f"bench-trend: unusable current artifact {cur_path!r}: {e}", file=sys.stderr)
        return 2

    added = sorted(k for k in cur if k not in prev)
    removed = sorted(k for k in prev if k not in cur)
    for key in added:
        print(f"bench-trend new   {fmt_key(key)}: baseline starts now")
    for key in removed:
        print(f"bench-trend gone  {fmt_key(key)}: no longer reported")

    regressions = []
    compared = 0
    for key, new_median in sorted(cur.items()):
        old_median = prev.get(key)
        if old_median is None:
            continue
        # Quick-mode rows can legitimately record sub-ns medians that round
        # to 0 (or carry NaN from a degenerate sample); a ratio against
        # those is meaningless — and 0 would divide by zero — so the label
        # restarts its baseline, loudly rather than silently.
        if not old_median > 0.0:
            print(
                f"bench-trend reset {fmt_key(key)}: previous median "
                f"{old_median:g} ns unusable; baseline restarts now"
            )
            continue
        compared += 1
        ratio = new_median / old_median
        label, quick = key
        marker = " quick" if quick else ""
        line = f"  {label}{marker}: {old_median:.0f} -> {new_median:.0f} ns ({ratio:.2f}x)"
        if ratio > threshold:
            regressions.append(line)
        else:
            print(f"bench-trend ok{line}")

    if regressions:
        print(f"bench-trend: {len(regressions)} label(s) regressed past {threshold}x:")
        print("\n".join(regressions))
        return 1
    print(
        f"bench-trend: {compared} matching label(s), none past {threshold}x "
        f"({len(added)} added, {len(removed)} removed)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
