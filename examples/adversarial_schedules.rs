//! Adversarial weakly fair schedules: where Circles' always-correctness
//! earns its keep.
//!
//! Fast heuristics (undecided-state dynamics, greedy cancellation) solve
//! plurality *with high probability* under friendly random scheduling — but
//! the population-protocol model lets the scheduler be an adversary
//! constrained only by weak fairness. This example shows:
//!
//! 1. a hand-crafted weakly-fair-extendable schedule that makes greedy
//!    cancellation elect the *wrong* color;
//! 2. Circles under a lazy adversary (maximally unhelpful but weakly fair),
//!    a clustered bottleneck, and round-robin — always correct, merely
//!    slower.
//!
//! ```text
//! cargo run --release --example adversarial_schedules
//! ```

use circles::baselines::CancellationPlurality;
use circles::core::{CirclesProtocol, Color};
use circles::protocol::{InteractionTrace, Population, Simulation};
use circles::schedulers::{
    ClusteredScheduler, LazyAdversaryScheduler, RoundRobinScheduler, TraceScheduler,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Counts 3/2/2: color 0 is the strict plurality.
    let votes: Vec<Color> = [0, 0, 0, 1, 1, 2, 2].map(Color).to_vec();
    let k = 3;

    println!("votes: 3× c0, 2× c1, 2× c2 — c0 is the true plurality\n");

    // --- Part 1: cancellation is fooled by an adversarial schedule. -----
    let cancellation = CancellationPlurality::new(k);
    let population = Population::from_inputs(&cancellation, &votes);
    // Spend c0's tokens against c1, let c2 survive, then let c2 convert
    // everyone. Every pair can still occur later, so this prefix extends to
    // a weakly fair schedule.
    let ambush = InteractionTrace::from_pairs(
        7,
        vec![
            (0, 3),
            (1, 4),
            (2, 5),
            (6, 0),
            (6, 1),
            (6, 2),
            (6, 3),
            (6, 4),
            (6, 5),
        ],
    )?;
    let mut sim = Simulation::new(&cancellation, population, TraceScheduler::new(ambush), 0);
    for _ in 0..9 {
        sim.step()?;
    }
    let verdict = sim.population().output_consensus(&cancellation);
    println!("greedy cancellation under the ambush schedule elects: {verdict:?}");
    assert_eq!(verdict, Some(Color(2)));
    println!("✗ the 2k-state heuristic crowned a minority color\n");

    // --- Part 2: Circles shrugs off every weakly fair adversary. --------
    let circles = CirclesProtocol::new(k)?;
    let run = |name: &str, consensus: Option<Color>, steps: u64| {
        println!("circles + {name:<18} → {consensus:?} after {steps} interactions");
        assert_eq!(consensus, Some(Color(0)), "{name} broke correctness");
    };

    {
        let population = Population::from_inputs(&circles, &votes);
        let mut sim = Simulation::new(&circles, population, RoundRobinScheduler::new(), 1);
        let report = sim.run_until_silent(1_000_000, 42)?;
        run("round-robin", report.consensus, report.steps_to_consensus);
    }
    {
        let population = Population::from_inputs(&circles, &votes);
        let window = (votes.len() * (votes.len() - 1)) as u64;
        let mut sim = Simulation::new(
            &circles,
            population,
            LazyAdversaryScheduler::new(circles, window),
            2,
        );
        let report = sim.run_until_silent(10_000_000, 42)?;
        run(
            "lazy adversary",
            report.consensus,
            report.steps_to_consensus,
        );
    }
    {
        let population = Population::from_inputs(&circles, &votes);
        let mut sim = Simulation::new(&circles, population, ClusteredScheduler::new(32), 3);
        let report = sim.run_until_silent(10_000_000, 42)?;
        run(
            "clustered (1/32)",
            report.consensus,
            report.steps_to_consensus,
        );
    }

    println!("\n✓ always-correct under every weakly fair schedule we could throw at it");
    Ok(())
}
