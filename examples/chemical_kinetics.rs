//! Chemical kinetics: Circles as an explicit reaction network, simulated
//! exactly (Gillespie) and in the fluid limit (mean-field ODE).
//!
//! Where the `chemical_energy` example reads a discrete run through the
//! energy lens, this one builds the *actual chemistry*: species = reachable
//! Circles states, reactions = productive collisions `A + B → A' + B'`. It
//! then
//!
//! 1. simulates the continuous-time Markov chain exactly with a Gillespie
//!    SSA (time in parallel units — one unit ≈ `n` interactions),
//! 2. integrates the law-of-mass-action ODE the densities converge to as
//!    `n → ∞` (Kurtz's theorem),
//! 3. prints both trajectories side by side along with the closed-form
//!    energy floor `k·p_max` they must settle on, and the terminal
//!    bra-ket multiset against Lemma 3.6's prediction.
//!
//! ```text
//! cargo run --release --example chemical_kinetics
//! ```

use circles::core::{prediction, weight, CirclesProtocol, CirclesState, Color};
use circles::crn::{
    ode_density_trajectory, ssa_density_trajectory, MeanField, ReactionNetwork,
    StochasticSimulation,
};
use circles::protocol::{CountConfig, Protocol};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3u16;
    let n = 3000usize;
    // Concentrations 50% : 30% : 20%.
    let counts = [n / 2, n * 3 / 10, n - n / 2 - n * 3 / 10];

    let protocol = CirclesProtocol::new(k)?;
    let support: Vec<CirclesState> = (0..k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 100_000)?;
    println!(
        "reaction network: {} species (declared state space: {}), {} productive reactions",
        network.species_count(),
        usize::from(k).pow(3),
        network.reaction_count()
    );

    let mut initial = CountConfig::new();
    for (i, &c) in counts.iter().enumerate() {
        initial.insert(support[i], c);
    }

    // Side-by-side densities on a coarse grid.
    let times: Vec<f64> = (0..=8).map(f64::from).collect();
    let mut rng = StdRng::seed_from_u64(7);
    let ssa = ssa_density_trajectory(&network, &initial, &mut rng, &times, u64::MAX)?;
    let x0 = network.densities(&network.counts_from_config(&initial)?);
    let ode = ode_density_trajectory(&network, x0.clone(), &times, 0.01)?;

    let energy = |row: &[f64]| -> f64 {
        network
            .species()
            .iter()
            .map(|(id, s)| f64::from(weight(k, s.braket)) * row[id as usize])
            .sum()
    };
    let selfloops = |row: &[f64]| -> f64 {
        network
            .species()
            .iter()
            .map(|(id, s)| f64::from(s.braket.is_self_loop()) * row[id as usize])
            .sum()
    };

    println!("\n  t    energy(SSA)  energy(ODE)  self-loops(SSA)  self-loops(ODE)");
    for (i, &t) in times.iter().enumerate() {
        println!(
            "{t:>4.1}  {:>10.4}  {:>10.4}  {:>14.4}  {:>14.4}",
            energy(&ssa.rows[i]),
            energy(&ode.rows[i]),
            selfloops(&ssa.rows[i]),
            selfloops(&ode.rows[i]),
        );
    }
    let p_max = 0.5;
    println!(
        "\nenergy floor k·p_max = {:.2}; Kurtz sup-distance at n = {n}: {:.4}",
        f64::from(k) * p_max,
        ssa.sup_distance(&ode)
    );

    // Drive the stochastic system to silence and check Lemma 3.6.
    let mut sim = StochasticSimulation::new(&network, &initial)?;
    let report = sim.run_until_silent(&mut rng, u64::MAX);
    let inputs: Vec<Color> = (0..k as usize)
        .flat_map(|i| std::iter::repeat_n(Color(i as u16), counts[i]))
        .collect();
    let predicted = prediction::predicted_brakets(&inputs, k)?;
    let terminal = prediction::braket_config(&sim.config());
    println!(
        "\nSSA silent after {} reactions ({:.2} parallel-time units)",
        report.reactions, report.time
    );
    println!(
        "terminal bra-kets match Lemma 3.6 prediction: {}",
        if terminal == predicted { "yes" } else { "NO" }
    );
    assert_eq!(terminal, predicted, "Lemma 3.6 violated");

    // Mean-field equilibrium for comparison.
    let field = MeanField::new(&network);
    let (x_eq, t_eq) = field.run_to_equilibrium(x0, 1e-9, 0.02, 500.0)?;
    println!(
        "mean-field equilibrium reached by t = {t_eq:.1}: energy {:.4} (floor {:.2})",
        energy(&x_eq),
        f64::from(k) * p_max
    );
    Ok(())
}
