//! Exhaustive verification: proving an instance correct for *every* weakly
//! fair schedule, not just the sampled ones.
//!
//! The paper's Theorem 3.7 quantifies over all weakly fair schedulers. For
//! a concrete input multiset this is a finite-state claim, and the model
//! checker settles it exactly by exploring every reachable configuration
//! (see `pp-mc` and DESIGN.md §5 for why the three checked facts suffice).
//!
//! ```text
//! cargo run --release --example model_check
//! ```

use circles::core::Color;
use circles::mc::circles::{verify_circles_full, verify_circles_instance};
use circles::mc::ExploreLimits;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let instances: Vec<(&str, Vec<Color>, u16)> = vec![
        (
            "binary majority 4:3",
            vec![0, 0, 0, 0, 1, 1, 1].into_iter().map(Color).collect(),
            2,
        ),
        (
            "three colors 3:2:1",
            vec![0, 0, 0, 1, 1, 2].into_iter().map(Color).collect(),
            3,
        ),
        (
            "photo finish 3:2:2",
            vec![0, 0, 0, 1, 1, 2, 2].into_iter().map(Color).collect(),
            3,
        ),
        (
            "two-way tie 3:3",
            vec![0, 0, 0, 1, 1, 1].into_iter().map(Color).collect(),
            2,
        ),
        (
            "four colors 2:2:1:1 tie",
            vec![0, 0, 1, 1, 2, 3].into_iter().map(Color).collect(),
            4,
        ),
    ];

    println!("exhaustive weak-fairness verification (facts 1-3 of DESIGN.md §5):\n");
    for (name, inputs, k) in &instances {
        let report = verify_circles_instance(inputs, *k, ExploreLimits::default())?;
        println!(
            "  {name:<26} n={} k={k}: {} bra-ket configs, exchange DAG: {}, \
             unique terminal = prediction: {}, winner: {:?} → {}",
            report.n,
            report.config_count,
            report.exchange_dag,
            report.stable_matches_prediction,
            report.winner,
            if report.verified {
                "VERIFIED"
            } else {
                "FAILED"
            },
        );
        assert!(report.verified);
    }

    println!("\ncross-validation on the full k³ state space (global-fairness BSCC):\n");
    for (name, inputs, k) in instances.iter().take(3) {
        let report = verify_circles_full(inputs, *k, ExploreLimits::default())?;
        println!(
            "  {name:<26}: {} full configs, eventually silent: {}, stably computes μ: {}",
            report.config_count, report.eventually_silent, report.stably_computes,
        );
        assert!(report.eventually_silent && report.stably_computes);
    }

    println!("\n✓ every instance verified — Theorem 3.7 holds exactly on these populations");
    Ok(())
}
