//! Chemical view: Circles as energy minimization in a well-mixed solution.
//!
//! The paper's title credits the design to "energy minimization in chemical
//! settings": read each bra-ket as a bond with energy equal to its weight
//! (self-loops are maximally strained at energy `k`), and each ket exchange
//! as a reaction that fires only when it relaxes the weaker of the two
//! bonds. This example traces the total energy of the solution along a run
//! and shows:
//!
//! - the energy descends from `n·k` (all self-loops) to the unique ground
//!   state predicted by Lemma 3.6;
//! - the descent is *not* always monotone in total energy — the true
//!   Lyapunov function is the lexicographic potential, which strictly
//!   decreases at every reaction (asserted along the way).
//!
//! ```text
//! cargo run --release --example chemical_energy
//! ```

use circles::core::energy::{terminal_energy, total_energy, EnergyTrace};
use circles::core::potential::weight_vector;
use circles::core::prediction::braket_config_of_population;
use circles::core::{BraKet, CirclesProtocol, Color};
use circles::protocol::{CountConfig, Population, Simulation, UniformPairScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 6u16;
    // A "solution" with species concentrations 7:5:4:3:3:2.
    let mut molecules: Vec<Color> = Vec::new();
    for (species, count) in [(0u16, 7), (1, 5), (2, 4), (3, 3), (4, 3), (5, 2)] {
        for _ in 0..count {
            molecules.push(Color(species));
        }
    }
    let n = molecules.len();
    let protocol = CirclesProtocol::new(k)?;
    let population = Population::from_inputs(&protocol, &molecules);

    let mut brakets: CountConfig<BraKet> = braket_config_of_population(&population);
    let initial_energy = total_energy(&brakets, k);
    let ground_state = terminal_energy(&molecules, k)?;
    println!("n = {n} molecules, k = {k} species");
    println!(
        "initial energy: {initial_energy} (n·k = {})",
        n * usize::from(k)
    );
    println!("predicted ground-state energy (Lemma 3.6): {ground_state}");

    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 99);
    let mut trace = EnergyTrace::new();
    let mut potential = weight_vector(&brakets, k);
    let mut reactions = 0u64;
    trace.record(0, &brakets, k);

    let report = sim.run_until_silent_observed(10_000_000, 16, |step| {
        let ket_moved = step.before.0.braket.ket != step.after.0.braket.ket
            || step.before.1.braket.ket != step.after.1.braket.ket;
        if !ket_moved {
            return;
        }
        reactions += 1;
        brakets.transfer(&step.before.0.braket, step.after.0.braket);
        brakets.transfer(&step.before.1.braket, step.after.1.braket);
        // The Lyapunov function strictly decreases at every reaction.
        let next = weight_vector(&brakets, k);
        assert!(next < potential, "Theorem 3.4 violated");
        potential = next;
        trace.record(step.step, &brakets, k);
    })?;

    println!("\n  energy trajectory (one sample per reaction):");
    for window in trace.samples().chunks(6) {
        let line: Vec<String> = window
            .iter()
            .map(|s| format!("@{:>5}: {:>3} ({} loops)", s.step, s.total, s.self_loops))
            .collect();
        println!("    {}", line.join("  "));
    }

    let final_energy = trace.samples().last().expect("recorded").total;
    println!(
        "\n  {reactions} reactions over {} collisions; energy {initial_energy} → {final_energy}",
        report.steps
    );
    println!(
        "  monotone in total energy: {} (max single rise: {})",
        trace.is_monotone_nonincreasing(),
        trace.max_rise()
    );
    assert_eq!(final_energy, ground_state, "must reach the ground state");
    println!("\n✓ the solution relaxed to the unique minimum-energy configuration");
    println!(
        "✓ every molecule reports the plurality species: {:?}",
        report.consensus
    );
    Ok(())
}
