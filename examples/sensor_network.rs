//! Sensor network scenario: thousands of tiny sensors agree on the most
//! common reading.
//!
//! The paper motivates state-complexity minimization with "tiny sensors in
//! a network": each sensor quantizes its measurement into one of `k`
//! classes and the network must agree on the modal class using only
//! `k³` states of memory per sensor — with *no* failure probability, under
//! any weakly fair communication pattern.
//!
//! This example runs a large population on the count-based engine (the
//! anonymous dynamics are identical, and millions of agents are cheap) and
//! reports total and parallel time.
//!
//! ```text
//! cargo run --release --example sensor_network
//! ```

use circles::core::{CirclesProtocol, Color};
use circles::protocol::CountEngine;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 8u16;
    // Note on scale: the anonymous engine handles millions of agents per
    // second, but *convergence* of Circles under uniform-random scheduling
    // has an Θ(n²)-interaction tail (the final ket exchanges wait for two
    // specific agents among n to meet), so a demo-friendly population stays
    // in the low thousands. Experiment E2 charts the scaling.
    let n = 2_000usize;
    let mut rng = StdRng::seed_from_u64(2024);

    // Sensors observe a noisy field: class 3 is the true modal reading,
    // the others get geometrically less support.
    let mut readings: Vec<Color> = Vec::with_capacity(n);
    for _ in 0..n {
        let r: f64 = rng.random_range(0.0..1.0);
        let class = if r < 0.30 {
            3
        } else {
            // Spread the rest across all classes.
            rng.random_range(0..k)
        };
        readings.push(Color(class));
    }

    let counts = {
        let mut c = vec![0usize; usize::from(k)];
        for r in &readings {
            c[r.index()] += 1;
        }
        c
    };
    println!("n = {n}, k = {k}, class counts: {counts:?}");
    let winner = counts
        .iter()
        .enumerate()
        .max_by_key(|&(_, c)| *c)
        .map(|(i, _)| Color(i as u16))
        .expect("nonempty");

    let protocol = CirclesProtocol::new(k)?;
    let mut sim = CountEngine::from_inputs(&protocol, &readings, 7);
    let report = sim.run_until_silent(20_000_000_000)?;

    println!(
        "stabilized after {} interactions = {:.1} parallel rounds",
        report.steps_to_silence,
        report.steps_to_silence as f64 / n as f64
    );
    println!(
        "consensus after {} interactions = {:.1} parallel rounds",
        report.steps_to_consensus,
        report.steps_to_consensus as f64 / n as f64
    );
    println!(
        "network decided: {:?} (truth: {winner:?})",
        report.consensus
    );
    assert_eq!(report.consensus, Some(winner));
    println!("✓ the sensor network found the modal reading");
    Ok(())
}
