//! Topology tour: what Circles' completeness assumption buys.
//!
//! The paper's weakly fair scheduler ranges over *all* pairs — the complete
//! interaction graph. This example runs the same election on six topologies
//! and prints, per topology: whether the run went silent, whether the
//! terminal bra-ket multiset matches Lemma 3.6's prediction, and whether
//! every agent ended up outputting the true winner. On the complete graph
//! all three must hold (Theorems 3.4/3.7); on sparse graphs the tour
//! regularly exhibits both failure modes — frozen wrong outputs and
//! never-silent output oscillation (experiment E15 quantifies the rates).
//!
//! ```text
//! cargo run --release --example topology_tour
//! ```

use circles::core::{prediction, CirclesProtocol, Color};
use circles::protocol::{Population, Simulation};
use circles::topology::{is_graph_silent, EdgeScheduler, InteractionGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let k = 3u16;
    let n = 36usize;
    // 16 : 12 : 8 — color 0 wins with margin 4.
    let mut inputs: Vec<Color> = Vec::new();
    for (color, count) in [(0u16, 16), (1, 12), (2, 8)] {
        inputs.extend(std::iter::repeat_n(Color(color), count));
    }
    let winner = Color(0);
    let protocol = CirclesProtocol::new(k)?;
    let predicted = prediction::predicted_brakets(&inputs, k)?;

    let mut graph_rng = StdRng::seed_from_u64(1);
    let topologies = vec![
        InteractionGraph::complete(n)?,
        InteractionGraph::random_regular(n, 4, &mut graph_rng)?,
        InteractionGraph::grid(6, 6)?,
        InteractionGraph::cycle(n)?,
        InteractionGraph::path(n)?,
        InteractionGraph::star(n)?,
    ];

    println!("{n} agents, k = {k}, winner = {winner}, 20 placements per topology\n");
    println!(
        "{:<18} {:>8} {:>10} {:>12} {:>10}",
        "topology", "diam", "silent", "predicted", "correct"
    );
    for graph in topologies {
        let mut silent = 0usize;
        let mut predicted_ok = 0usize;
        let mut correct = 0usize;
        let placements = 20u64;
        for seed in 0..placements {
            // Shuffle the placement of inputs on the graph's nodes.
            let mut placed = inputs.clone();
            use rand::seq::SliceRandom;
            placed.shuffle(&mut StdRng::seed_from_u64(seed));
            let population = Population::from_inputs(&protocol, &placed);
            let mut sim = Simulation::new(
                &protocol,
                population,
                EdgeScheduler::new(graph.clone()),
                seed,
            );
            // Quiescence on a graph means: no *edge* is productive. The
            // engine's all-pairs silence would never trigger on sparse
            // graphs whose frozen agents would react if they could meet.
            let max_steps = 4_000_000u64;
            let chunk = 4 * n as u64;
            let mut graph_silent = is_graph_silent(&graph, sim.population(), &protocol);
            while !graph_silent && sim.stats().steps < max_steps {
                sim.run_observed(chunk.min(max_steps - sim.stats().steps), |_| ())?;
                graph_silent = is_graph_silent(&graph, sim.population(), &protocol);
            }
            if graph_silent {
                silent += 1;
            }
            let outputs = sim.population().output_counts(&protocol);
            if outputs.len() == 1 && outputs.keys().next() == Some(&winner) {
                correct += 1;
            }
            if prediction::braket_config_of_population(sim.population()) == predicted {
                predicted_ok += 1;
            }
        }
        println!(
            "{:<18} {:>8} {:>9.0}% {:>11.0}% {:>9.0}%",
            graph.name(),
            graph.diameter().map_or("-".to_string(), |d| d.to_string()),
            100.0 * silent as f64 / placements as f64,
            100.0 * predicted_ok as f64 / placements as f64,
            100.0 * correct as f64 / placements as f64,
        );
    }
    println!("\nThe complete row must read 100% everywhere (Theorems 3.4/3.7);");
    println!("sparse topologies lose the prediction first, then correctness.");
    Ok(())
}
