//! The unordered setting (paper §4): plurality over *opaque* colors.
//!
//! Vanilla Circles needs numeric colors — its weight function measures
//! cyclic distances between color indices. When colors are opaque
//! identifiers (device IDs, chemical species, candidate names hashed to
//! integers) that agents can only compare for equality, the `O(k⁴)`-state
//! composition of the ordering protocol with Circles takes over: agents
//! first elect one leader per color, leaders claim distinct numeric labels,
//! and Circles runs over the labels — with the undo machinery protecting
//! the bra-ket invariant whenever a label changes mid-run.
//!
//! ```text
//! cargo run --release --example unordered_colors
//! ```

use circles::core::Color;
use circles::extensions::ordering::OrderingProtocol;
use circles::extensions::unordered::UnorderedCircles;
use circles::protocol::{Population, Simulation, UniformPairScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Opaque "colors": arbitrary sparse identifiers, not [0, k).
    let ballots: Vec<Color> = [9001, 777, 9001, 31337, 777, 9001, 9001, 31337, 777, 9001]
        .map(Color)
        .to_vec();
    let k = 3; // at most 3 distinct identifiers

    println!("ballots over opaque ids: 5× #9001, 3× #777, 2× #31337");

    // --- Stage 1 (standalone): the ordering layer alone. ----------------
    let ordering = OrderingProtocol::new(k);
    let population = Population::from_inputs(&ordering, &ballots);
    let mut sim = Simulation::new(&ordering, population, UniformPairScheduler::new(), 5);
    sim.run_until_silent(10_000_000, 16)?;
    let labeled = sim.into_population();
    assert!(OrderingProtocol::labeling_is_valid(&labeled));
    println!("\nordering layer alone: every color elected one leader with a unique label:");
    let mut seen = std::collections::BTreeMap::new();
    for s in labeled.iter() {
        seen.entry(s.color.0).or_insert(s.label);
    }
    for (color, label) in &seen {
        println!("  id #{color:<6} → label {label}");
    }

    // --- Stage 2: the full composition (ordering + Circles + undo). -----
    let protocol = UnorderedCircles::new(k);
    let population = Population::from_inputs(&protocol, &ballots);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 11);
    let report = sim.run_until_silent(50_000_000, 32)?;
    let population = sim.into_population();

    assert!(
        UnorderedCircles::conservation_holds(&population, k),
        "undo machinery failed to protect the bra-ket invariant"
    );
    let winner = UnorderedCircles::consensus_winner(&population)
        .ok_or("population did not reach a labeled consensus")?;
    println!(
        "\nfull composition stabilized after {} interactions",
        report.steps_to_silence
    );
    println!("winner: id #{}", winner.0);
    assert_eq!(winner, Color(9001));
    println!("✓ the plurality id won, using only equality comparisons on ids");
    println!(
        "✓ state complexity: O(k⁴) as the paper claims (here: {} states for k = {k})",
        {
            use circles::protocol::EnumerableProtocol;
            protocol.state_complexity()
        }
    );
    Ok(())
}
