//! Quickstart: run Circles once and watch it find the relative majority.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use circles::core::{CirclesProtocol, Color, GreedyDecomposition};
use circles::protocol::{Population, Simulation, UniformPairScheduler};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 12 agents vote among k = 4 colors; color 2 leads 5 : 4 : 2 : 1.
    let k = 4;
    let votes: Vec<Color> = [2, 1, 2, 0, 2, 1, 3, 2, 1, 2, 1, 0].map(Color).to_vec();

    let protocol = CirclesProtocol::new(k)?;
    let greedy = GreedyDecomposition::from_inputs(&votes, k)?;
    println!("population: n = {}, k = {}", votes.len(), k);
    println!(
        "true counts: {:?}",
        (0..k).map(|c| greedy.count(Color(c))).collect::<Vec<_>>()
    );
    println!(
        "state complexity: {} states (k³ = {})",
        pp_protocol_state_count(&protocol),
        u32::from(k).pow(3)
    );

    let population = Population::from_inputs(&protocol, &votes);
    let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 42);
    let report = sim.run_until_silent(1_000_000, 16)?;

    println!(
        "stabilized after {} interactions ({} of them changed a state)",
        report.steps_to_silence, report.state_changes
    );
    println!(
        "all agents agreed on the majority after {} interactions",
        report.steps_to_consensus
    );
    println!("consensus output: {:?}", report.consensus);
    assert_eq!(report.consensus, Some(Color(2)));
    println!("✓ matches the ground-truth plurality winner");
    Ok(())
}

fn pp_protocol_state_count(protocol: &CirclesProtocol) -> usize {
    use circles::protocol::EnumerableProtocol;
    protocol.state_complexity()
}
