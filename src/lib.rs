//! # Circles — relative majority with `k³` states in population protocols
//!
//! Facade crate for the reproduction of *"Brief Announcement: Minimizing
//! Energy Solves Relative Majority with a Cubic Number of States in
//! Population Protocols"* (Breitkopf, Dallot, El-Hayek, Schmid — PODC 2025).
//!
//! This crate re-exports the workspace's public API:
//!
//! - [`protocol`] — the population-protocol execution framework.
//! - [`schedulers`] — weakly fair scheduler library.
//! - [`core`] — the Circles protocol and its executable theory.
//! - [`baselines`] — baseline majority/plurality protocols.
//! - [`mc`] — the exhaustive model checker.
//! - [`extensions`] — paper §4 extensions (ordering, unordered setting,
//!   ties, fault injection).
//! - [`analysis`] — experiment harness, statistics, figures.
//! - [`crn`] — the chemical-reaction-network view: exact Gillespie
//!   simulation and the mean-field ODE (the paper's "chemical settings").
//! - [`topology`] — restricted interaction graphs and edge-fair schedulers.
//!
//! # Quickstart
//!
//! ```
//! use circles::core::{CirclesProtocol, Color};
//! use circles::protocol::{Population, Simulation, UniformPairScheduler};
//!
//! // 7 agents vote among k = 3 colors; color 2 has relative majority.
//! let protocol = CirclesProtocol::new(3)?;
//! let inputs: Vec<Color> = [0, 1, 1, 2, 2, 2, 0].map(Color).to_vec();
//! let population = Population::from_inputs(&protocol, &inputs);
//! let mut sim = Simulation::new(&protocol, population, UniformPairScheduler::new(), 42);
//! let report = sim.run_until_silent(1_000_000, 16)?;
//! assert_eq!(report.consensus, Some(Color(2)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! For large populations, switch to the batched count engine — anonymous
//! state counts instead of indexed agents, one cheap update per
//! state-changing interaction:
//!
//! ```
//! use circles::core::{CirclesProtocol, Color};
//! use circles::protocol::CountEngine;
//!
//! // 100k agents; color 0 holds a clear margin.
//! let protocol = CirclesProtocol::new(3)?;
//! let inputs: Vec<Color> = (0..100_000u32)
//!     .map(|i| Color(if i % 10 == 0 { 0 } else { (i % 3) as u16 }))
//!     .collect();
//! let mut engine = CountEngine::from_inputs(&protocol, &inputs, 42);
//! let report = engine.run_until_silent(u64::MAX / 2)?;
//! assert_eq!(report.consensus, Some(Color(0)));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use circles_core as core;
pub use pp_analysis as analysis;
pub use pp_baselines as baselines;
pub use pp_crn as crn;
pub use pp_extensions as extensions;
pub use pp_mc as mc;
pub use pp_protocol as protocol;
pub use pp_schedulers as schedulers;
pub use pp_topology as topology;
