//! `circles` — command-line interface to the Circles reproduction.
//!
//! ```text
//! circles run      --counts 50,30,20 [--k 3] [--scheduler uniform] [--seed 7] [--max-steps N]
//! circles predict  --counts 50,30,20 [--k 3]
//! circles verify   --counts 3,2,1    [--k 3] [--full]
//! circles state-space --k 4
//! circles kinetics --counts 500,300,200 [--k 3] [--seed 7] [--t-end 10]
//! circles topology --counts 20,12,4 [--graph cycle] [--seed 7] [--max-steps N]
//! ```
//!
//! `--counts c0,c1,…` gives the multiplicity of each color; `--k` defaults
//! to the number of counts provided. Argument parsing is hand-rolled (the
//! workspace keeps its dependency set minimal).

use std::process::ExitCode;

use circles::core::prediction::{self, predicted_brakets, self_loop_colors};
use circles::core::{weight, CirclesProtocol, CirclesState, Color, GreedyDecomposition};
use circles::crn::{MeanField, ReactionNetwork, StochasticSimulation};
use circles::mc::circles::{verify_circles_full, verify_circles_instance};
use circles::mc::ExploreLimits;
use circles::protocol::{
    parallel_time, CountConfig, EnumerableProtocol, Population, Protocol, Simulation,
    UniformPairScheduler,
};
use circles::schedulers::{ClusteredScheduler, RoundRobinScheduler, ShuffledRoundsScheduler};
use circles::topology::{is_graph_silent, EdgeScheduler, InteractionGraph};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run_cli(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "usage:
  circles run         --counts c0,c1,...  [--k K] [--scheduler uniform|round-robin|shuffled|clustered] [--seed S] [--max-steps N]
  circles predict     --counts c0,c1,...  [--k K]
  circles verify      --counts c0,c1,...  [--k K] [--full]
  circles state-space --k K
  circles kinetics    --counts c0,c1,...  [--k K] [--seed S] [--t-end T]
  circles topology    --counts c0,c1,...  [--k K] [--graph complete|cycle|path|star|grid|regular] [--seed S] [--max-steps N]";

/// Parsed common options.
struct Options {
    counts: Vec<usize>,
    k: u16,
    scheduler: String,
    graph: String,
    seed: u64,
    max_steps: u64,
    t_end: f64,
    full: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut counts: Option<Vec<usize>> = None;
    let mut k: Option<u16> = None;
    let mut scheduler = "uniform".to_string();
    let mut graph = "cycle".to_string();
    let mut seed = 42u64;
    let mut max_steps = 1_000_000_000u64;
    let mut t_end = 10.0f64;
    let mut full = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("missing value for {name}"))
        };
        match arg.as_str() {
            "--counts" => {
                let raw = value("--counts")?;
                let parsed: Result<Vec<usize>, _> =
                    raw.split(',').map(|p| p.trim().parse()).collect();
                counts = Some(parsed.map_err(|e| format!("bad --counts: {e}"))?);
            }
            "--k" => k = Some(value("--k")?.parse().map_err(|e| format!("bad --k: {e}"))?),
            "--scheduler" => scheduler = value("--scheduler")?,
            "--graph" => graph = value("--graph")?,
            "--t-end" => {
                t_end = value("--t-end")?
                    .parse()
                    .map_err(|e| format!("bad --t-end: {e}"))?;
                if !(t_end.is_finite() && t_end > 0.0) {
                    return Err("--t-end must be positive".into());
                }
            }
            "--seed" => {
                seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?
            }
            "--max-steps" => {
                max_steps = value("--max-steps")?
                    .parse()
                    .map_err(|e| format!("bad --max-steps: {e}"))?
            }
            "--full" => full = true,
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let counts = counts.ok_or("missing --counts")?;
    if counts.is_empty() {
        return Err("--counts must list at least one color".into());
    }
    let k = match k {
        Some(k) => k,
        None => u16::try_from(counts.len()).map_err(|_| "too many colors")?,
    };
    if usize::from(k) < counts.len() {
        return Err(format!(
            "--k {k} smaller than the {} counts given",
            counts.len()
        ));
    }
    Ok(Options {
        counts,
        k,
        scheduler,
        graph,
        seed,
        max_steps,
        t_end,
        full,
    })
}

fn inputs_of(counts: &[usize]) -> Vec<Color> {
    let mut inputs = Vec::new();
    for (color, &count) in counts.iter().enumerate() {
        inputs.extend(std::iter::repeat_n(Color(color as u16), count));
    }
    inputs
}

fn run_cli(args: &[String]) -> Result<(), String> {
    let Some((command, rest)) = args.split_first() else {
        return Err("no command given".into());
    };
    match command.as_str() {
        "run" => cmd_run(&parse_options(rest)?),
        "predict" => cmd_predict(&parse_options(rest)?),
        "verify" => cmd_verify(&parse_options(rest)?),
        "state-space" => cmd_state_space(rest),
        "kinetics" => cmd_kinetics(&parse_options(rest)?),
        "topology" => cmd_topology(&parse_options(rest)?),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command {other}")),
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let inputs = inputs_of(&opts.counts);
    let n = inputs.len();
    if n < 2 {
        return Err("need at least two agents".into());
    }
    let protocol = CirclesProtocol::new(opts.k).map_err(|e| e.to_string())?;
    let population = Population::from_inputs(&protocol, &inputs);
    let check = (n as u64).max(16);

    let report = match opts.scheduler.as_str() {
        "uniform" => {
            let mut sim = Simulation::new(
                &protocol,
                population,
                UniformPairScheduler::new(),
                opts.seed,
            );
            sim.run_until_silent(opts.max_steps, check)
        }
        "round-robin" => {
            let mut sim =
                Simulation::new(&protocol, population, RoundRobinScheduler::new(), opts.seed);
            sim.run_until_silent(opts.max_steps, check)
        }
        "shuffled" => {
            let mut sim = Simulation::new(
                &protocol,
                population,
                ShuffledRoundsScheduler::new(),
                opts.seed,
            );
            sim.run_until_silent(opts.max_steps, check)
        }
        "clustered" => {
            let mut sim = Simulation::new(
                &protocol,
                population,
                ClusteredScheduler::new(16),
                opts.seed,
            );
            sim.run_until_silent(opts.max_steps, check)
        }
        other => return Err(format!("unknown scheduler {other}")),
    }
    .map_err(|e| e.to_string())?;

    let greedy = GreedyDecomposition::from_inputs(&inputs, opts.k).map_err(|e| e.to_string())?;
    println!("n = {n}, k = {}, scheduler = {}", opts.k, opts.scheduler);
    println!("true winner: {:?}", greedy.winner());
    println!(
        "silence after {} interactions ({:.1} parallel time)",
        report.steps_to_silence,
        parallel_time(report.steps_to_silence, n)
    );
    println!(
        "consensus after {} interactions ({:.1} parallel time)",
        report.steps_to_consensus,
        parallel_time(report.steps_to_consensus, n)
    );
    println!("consensus output: {:?}", report.consensus);
    Ok(())
}

fn cmd_predict(opts: &Options) -> Result<(), String> {
    let inputs = inputs_of(&opts.counts);
    let greedy = GreedyDecomposition::from_inputs(&inputs, opts.k).map_err(|e| e.to_string())?;
    println!("greedy independent sets (Definition 3.1):");
    for (p, set) in greedy.sets().enumerate() {
        let names: Vec<String> = set.iter().map(|c| c.to_string()).collect();
        println!("  G_{} = {{{}}}", p + 1, names.join(", "));
    }
    let predicted = predicted_brakets(&inputs, opts.k).map_err(|e| e.to_string())?;
    println!("\npredicted terminal bra-kets (Lemma 3.6):");
    for (braket, count) in predicted.iter() {
        println!("  {count} × {braket}");
    }
    match greedy.winner() {
        Some(mu) => println!(
            "\nwinner: {mu} (self-loops: {:?})",
            self_loop_colors(&predicted)
        ),
        None => println!(
            "\ntie between {:?} — no self-loop survives",
            greedy.winners()
        ),
    }
    Ok(())
}

fn cmd_verify(opts: &Options) -> Result<(), String> {
    let inputs = inputs_of(&opts.counts);
    let report = verify_circles_instance(&inputs, opts.k, ExploreLimits::default())
        .map_err(|e| e.to_string())?;
    println!(
        "bra-ket space: {} configurations; exchange DAG: {}; unique terminal = prediction: {}; self-loops correct: {}",
        report.config_count,
        report.exchange_dag,
        report.stable_matches_prediction,
        report.self_loops_correct
    );
    println!(
        "weak-fairness verification: {}",
        if report.verified {
            "VERIFIED"
        } else {
            "FAILED"
        }
    );
    if opts.full {
        let full = verify_circles_full(&inputs, opts.k, ExploreLimits::default())
            .map_err(|e| e.to_string())?;
        println!(
            "full state space: {} configurations; eventually silent: {}; stably computes μ: {}",
            full.config_count, full.eventually_silent, full.stably_computes
        );
    }
    if report.verified {
        Ok(())
    } else {
        Err("instance failed verification".into())
    }
}

fn cmd_state_space(args: &[String]) -> Result<(), String> {
    let mut k: Option<u16> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--k" => {
                k = Some(
                    it.next()
                        .ok_or("missing value for --k")?
                        .parse()
                        .map_err(|e| format!("bad --k: {e}"))?,
                )
            }
            other => return Err(format!("unknown argument {other}")),
        }
    }
    let k = k.ok_or("missing --k")?;
    let protocol = CirclesProtocol::new(k).map_err(|e| e.to_string())?;
    println!(
        "k = {k}: circles uses {} states (k³); lower bound Ω(k²) = {}, prior upper bound O(k⁷) = {:.2e}",
        protocol.state_complexity(),
        u64::from(k).pow(2),
        f64::from(k).powi(7)
    );
    Ok(())
}

fn cmd_kinetics(opts: &Options) -> Result<(), String> {
    let inputs = inputs_of(&opts.counts);
    let n = inputs.len();
    if n < 2 {
        return Err("need at least two agents".into());
    }
    let protocol = CirclesProtocol::new(opts.k).map_err(|e| e.to_string())?;
    let support: Vec<CirclesState> = (0..opts.k).map(|i| protocol.input(&Color(i))).collect();
    let network = ReactionNetwork::from_protocol(&protocol, &support, 2_000_000)
        .map_err(|e| e.to_string())?;
    println!(
        "reaction network: {} species (of k³ = {} declared states), {} productive reactions",
        network.species_count(),
        usize::from(opts.k).pow(3),
        network.reaction_count()
    );

    let initial: CountConfig<CirclesState> = inputs.iter().map(|c| protocol.input(c)).collect();
    let mut sim = StochasticSimulation::new(&network, &initial).map_err(|e| e.to_string())?;
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(opts.seed);
    let report = sim.run_until_silent(&mut rng, opts.max_steps);
    let energy = sim.observe(|s| f64::from(weight(opts.k, s.braket)));
    println!(
        "SSA: {} reactions, {:.2} parallel-time units, silent = {}, final energy/agent = {energy:.4}",
        report.reactions, report.time, report.silent
    );
    let predicted = predicted_brakets(&inputs, opts.k).map_err(|e| e.to_string())?;
    println!(
        "terminal bra-kets match Lemma 3.6: {}",
        prediction::braket_config(&sim.config()) == predicted
    );

    let field = MeanField::new(&network);
    let x0 = network.densities(
        &network
            .counts_from_config(&initial)
            .map_err(|e| e.to_string())?,
    );
    let (x, t) = field
        .run_to_equilibrium(x0, 1e-9, 0.02, opts.t_end.max(1.0) * 100.0)
        .map_err(|e| e.to_string())?;
    let ode_energy = field.observe(&x, |s| f64::from(weight(opts.k, s.braket)));
    println!("mean-field equilibrium by t = {t:.1}: energy/agent = {ode_energy:.4}");
    Ok(())
}

fn cmd_topology(opts: &Options) -> Result<(), String> {
    let inputs = inputs_of(&opts.counts);
    let n = inputs.len();
    if n < 3 {
        return Err("need at least three agents".into());
    }
    let mut graph_rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(opts.seed);
    let graph = match opts.graph.as_str() {
        "complete" => InteractionGraph::complete(n),
        "cycle" => InteractionGraph::cycle(n),
        "path" => InteractionGraph::path(n),
        "star" => InteractionGraph::star(n),
        "grid" => {
            let side = (n as f64).sqrt().round() as usize;
            if side * side != n {
                return Err(format!("--graph grid needs a square n; got {n}"));
            }
            InteractionGraph::grid(side, side)
        }
        "regular" => InteractionGraph::random_regular(n, 4.min(n - 1), &mut graph_rng),
        other => return Err(format!("unknown graph {other}")),
    }
    .map_err(|e| e.to_string())?;

    let protocol = CirclesProtocol::new(opts.k).map_err(|e| e.to_string())?;
    let population = Population::from_inputs(&protocol, &inputs);
    let mut sim = Simulation::new(
        &protocol,
        population,
        EdgeScheduler::new(graph.clone()),
        opts.seed,
    );
    let chunk = (4 * n as u64).max(64);
    let mut silent = is_graph_silent(&graph, sim.population(), &protocol);
    while !silent && sim.stats().steps < opts.max_steps {
        sim.run_observed(chunk.min(opts.max_steps - sim.stats().steps), |_| ())
            .map_err(|e| e.to_string())?;
        silent = is_graph_silent(&graph, sim.population(), &protocol);
    }

    let greedy = GreedyDecomposition::from_inputs(&inputs, opts.k).map_err(|e| e.to_string())?;
    let predicted = predicted_brakets(&inputs, opts.k).map_err(|e| e.to_string())?;
    let outputs = sim.population().output_counts(&protocol);
    println!("{graph}");
    println!("true winner: {:?}", greedy.winner());
    println!(
        "graph-silent: {silent} (after {} interactions, {:.1} parallel time)",
        sim.stats().steps,
        parallel_time(sim.stats().steps, n)
    );
    println!(
        "bra-kets match Lemma 3.6 prediction: {}",
        prediction::braket_config_of_population(sim.population()) == predicted
    );
    println!("output histogram at end: {outputs:?}");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_minimal() {
        let opts = parse_options(&strs(&["--counts", "3,2,1"])).unwrap();
        assert_eq!(opts.counts, vec![3, 2, 1]);
        assert_eq!(opts.k, 3);
        assert_eq!(opts.scheduler, "uniform");
    }

    #[test]
    fn parse_overrides() {
        let opts = parse_options(&strs(&[
            "--counts",
            "5,4",
            "--k",
            "4",
            "--seed",
            "9",
            "--scheduler",
            "round-robin",
            "--max-steps",
            "100",
            "--full",
        ]))
        .unwrap();
        assert_eq!(opts.k, 4);
        assert_eq!(opts.seed, 9);
        assert_eq!(opts.max_steps, 100);
        assert!(opts.full);
    }

    #[test]
    fn parse_rejects_bad_input() {
        assert!(parse_options(&strs(&[])).is_err());
        assert!(parse_options(&strs(&["--counts", "x,y"])).is_err());
        assert!(parse_options(&strs(&["--counts", "1,2", "--k", "1"])).is_err());
        assert!(parse_options(&strs(&["--bogus"])).is_err());
    }

    #[test]
    fn inputs_expand_counts() {
        let inputs = inputs_of(&[2, 0, 1]);
        assert_eq!(inputs, vec![Color(0), Color(0), Color(2)]);
    }

    #[test]
    fn commands_execute() {
        run_cli(&strs(&["predict", "--counts", "3,2,1"])).unwrap();
        run_cli(&strs(&["verify", "--counts", "3,2,1"])).unwrap();
        run_cli(&strs(&["run", "--counts", "4,2", "--seed", "1"])).unwrap();
        run_cli(&strs(&["state-space", "--k", "5"])).unwrap();
        run_cli(&strs(&["kinetics", "--counts", "6,3,2", "--seed", "2"])).unwrap();
        run_cli(&strs(&[
            "topology",
            "--counts",
            "5,3",
            "--graph",
            "cycle",
            "--max-steps",
            "100000",
        ]))
        .unwrap();
        assert!(run_cli(&strs(&["bogus"])).is_err());
        assert!(run_cli(&strs(&[])).is_err());
    }

    #[test]
    fn parse_kinetics_and_topology_options() {
        let opts = parse_options(&strs(&[
            "--counts", "4,2", "--graph", "star", "--t-end", "3.5",
        ]))
        .unwrap();
        assert_eq!(opts.graph, "star");
        assert!((opts.t_end - 3.5).abs() < 1e-12);
        assert!(parse_options(&strs(&["--counts", "4,2", "--t-end", "-1"])).is_err());
        assert!(parse_options(&strs(&["--counts", "4,2", "--t-end", "x"])).is_err());
    }

    #[test]
    fn topology_rejects_bad_graphs() {
        assert!(run_cli(&strs(&["topology", "--counts", "4,3", "--graph", "bogus"])).is_err());
        // 7 agents cannot form a square grid.
        assert!(run_cli(&strs(&["topology", "--counts", "4,3", "--graph", "grid"])).is_err());
    }
}
